"""Unit tests for shared kernel idioms (locks, reduction loops)."""

import pytest

from repro.errors import ConfigError
from repro.kernels.common import (
    MAX_SIMD_WIDTH,
    chunk,
    glsc_vector_update,
    padded,
    scalar_atomic_update,
    scalar_lock_acquire,
    scalar_lock_release,
    scalar_paired_lock_apply,
    vlock,
    vunlock,
)
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


class TestChunk:
    def test_covers_everything_once(self):
        for total in (0, 1, 7, 16, 100):
            for n_threads in (1, 3, 16):
                covered = []
                for tid in range(n_threads):
                    lo, hi = chunk(total, n_threads, tid)
                    covered.extend(range(lo, hi))
                assert covered == list(range(total))

    def test_balanced(self):
        sizes = [
            hi - lo
            for lo, hi in (chunk(100, 16, t) for t in range(16))
        ]
        assert max(sizes) - min(sizes) <= 1


class TestPadded:
    def test_pads_to_multiple(self):
        assert len(padded([1] * 5)) == MAX_SIMD_WIDTH
        assert len(padded([1] * MAX_SIMD_WIDTH)) == MAX_SIMD_WIDTH
        assert len(padded([1] * 17)) == 2 * MAX_SIMD_WIDTH

    def test_pads_with_zeros(self):
        assert padded([7])[1:] == [0] * (MAX_SIMD_WIDTH - 1)


def run_threads(cfg, program):
    machine = Machine(cfg)
    image = machine.image
    return machine, image


class TestScalarHelpers:
    def test_atomic_update_applies_fn(self):
        cfg = MachineConfig(n_cores=2, threads_per_core=1, simd_width=1)
        machine = Machine(cfg)
        word = machine.image.alloc_zeros(1)

        def program(ctx):
            for _ in range(10):
                yield from scalar_atomic_update(
                    ctx, word.base, lambda old: old + 2
                )

        for _ in range(2):
            machine.add_program(program)
        machine.run()
        assert word[0] == 40

    def test_lock_provides_mutual_exclusion(self):
        cfg = MachineConfig(n_cores=4, threads_per_core=1, simd_width=1)
        machine = Machine(cfg)
        lock = machine.image.alloc_zeros(1)
        counter = machine.image.alloc_zeros(1)

        def program(ctx):
            for _ in range(10):
                yield from scalar_lock_acquire(ctx, lock.base)
                value = yield ctx.load(counter.base)
                yield ctx.alu(3)  # widen the race window
                yield ctx.store(counter.base, value + 1)
                yield from scalar_lock_release(ctx, lock.base)

        for _ in range(4):
            machine.add_program(program)
        machine.run()
        assert counter[0] == 40
        assert lock[0] == 0

    def test_paired_lock_apply_orders_acquisition(self):
        cfg = MachineConfig(n_cores=2, threads_per_core=2, simd_width=1)
        machine = Machine(cfg)
        locks = machine.image.alloc_zeros(4)
        cells = machine.image.alloc_zeros(4)

        def program(ctx):
            # Threads hammer overlapping pairs in both orders; global
            # ordering inside the helper must avoid deadlock.
            pairs = [(0, 3), (3, 0), (1, 2), (2, 1)]
            a, b = pairs[ctx.tid]

            def work():
                va = yield ctx.load(cells.addr(a))
                yield ctx.store(cells.addr(a), va + 1)
                vb = yield ctx.load(cells.addr(b))
                yield ctx.store(cells.addr(b), vb + 1)

            for _ in range(5):
                yield from scalar_paired_lock_apply(
                    ctx, locks.base, a, b, work
                )

        for _ in range(4):
            machine.add_program(program)
        machine.run()
        assert sum(cells.to_list()) == 4 * 5 * 2
        assert all(v == 0 for v in locks.to_list())


class TestVectorHelpers:
    def test_glsc_vector_update_completes_all_lanes(self):
        cfg = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
        machine = Machine(cfg)
        data = machine.image.alloc_array([10, 20, 30, 40])

        def program(ctx):
            yield from glsc_vector_update(
                ctx,
                data.base,
                [0, 1, 2, 3],
                lambda vals, got: tuple(
                    v * 2 if got.lane(k) else v for k, v in enumerate(vals)
                ),
            )

        machine.add_program(program)
        machine.run()
        assert data.to_list() == [20, 40, 60, 80]

    def test_glsc_vector_update_with_aliases_terminates(self):
        cfg = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
        machine = Machine(cfg)
        data = machine.image.alloc_zeros(1)

        def program(ctx):
            yield from glsc_vector_update(
                ctx,
                data.base,
                [0, 0, 0, 0],
                lambda vals, got: tuple(
                    v + 1 if got.lane(k) else v for k, v in enumerate(vals)
                ),
            )

        machine.add_program(program)
        machine.run()
        assert data[0] == 4  # each alias winner applied exactly once

    def test_vlock_vunlock_roundtrip(self):
        cfg = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
        machine = Machine(cfg)
        locks = machine.image.alloc_zeros(8)
        observed = {}

        def program(ctx):
            got = yield from vlock(
                ctx, locks.base, [0, 2, 4, 6], ctx.all_ones()
            )
            observed["got"] = got
            observed["held"] = [locks[i] for i in (0, 2, 4, 6)]
            yield from vunlock(ctx, locks.base, [0, 2, 4, 6], got)

        machine.add_program(program)
        machine.run()
        assert observed["got"].all()
        assert observed["held"] == [1, 1, 1, 1]
        assert all(v == 0 for v in locks.to_list())

    def test_vlock_aliased_lanes_one_winner(self):
        cfg = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
        machine = Machine(cfg)
        locks = machine.image.alloc_zeros(4)
        observed = {}

        def program(ctx):
            got = yield from vlock(
                ctx, locks.base, [1, 1, 1, 3], ctx.all_ones()
            )
            observed["got"] = got
            yield from vunlock(ctx, locks.base, [1, 1, 1, 3], got)

        machine.add_program(program)
        machine.run()
        got = observed["got"]
        assert got.popcount() == 2  # one winner for lock 1, plus lock 3
        assert got.lane(3)

    def test_vlock_sees_taken_locks(self):
        cfg = MachineConfig(n_cores=1, threads_per_core=1, simd_width=2)
        machine = Machine(cfg)
        locks = machine.image.alloc_array([1, 0])  # lock 0 already held
        observed = {}

        def program(ctx):
            got = yield from vlock(ctx, locks.base, [0, 1], ctx.all_ones())
            observed["got"] = got

        machine.add_program(program)
        machine.run()
        assert observed["got"].lanes() == [False, True]
