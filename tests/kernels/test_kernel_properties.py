"""Property-based kernel correctness: random datasets, random machines.

Each test draws a random workload and machine shape and checks that
the simulated kernel produces the oracle answer.  This is the widest
net over the atomicity machinery: lost updates, broken reservations,
mis-resolved aliases, or barrier bugs all surface as verification
failures here.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernels.fs import Fs
from repro.kernels.gbc import Gbc
from repro.kernels.gps import Gps
from repro.kernels.hip import Hip
from repro.kernels.mfp import Mfp
from repro.kernels.smc import Smc
from repro.kernels.tms import Tms
from repro.sim.config import MachineConfig
from repro.sim.runner import run_prepared

# Every machine carries a tight cycle cap: the tiny workloads finish in
# well under 100k cycles, so a pathological draw (extreme contention)
# surfaces as a reproducible SimulationError instead of an hours-long
# grind toward the default 200M-cycle guard.
MACHINES = st.sampled_from(
    [
        dict(n_cores=1, threads_per_core=1, simd_width=4, max_cycles=3_000_000),
        dict(n_cores=1, threads_per_core=4, simd_width=4, max_cycles=3_000_000),
        dict(n_cores=4, threads_per_core=1, simd_width=4, max_cycles=3_000_000),
        dict(n_cores=2, threads_per_core=2, simd_width=1, max_cycles=3_000_000),
        dict(n_cores=2, threads_per_core=2, simd_width=16, max_cycles=3_000_000),
    ]
)
VARIANTS = st.sampled_from(["base", "glsc"])

COMMON = dict(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON)
@given(machine=MACHINES, variant=VARIANTS, seed=st.integers(0, 1000),
       n_bins=st.integers(4, 40), coherence=st.floats(0, 0.8))
def test_hip_random(machine, variant, seed, n_bins, coherence):
    config = MachineConfig(**machine)
    kernel = Hip(
        config.n_threads,
        n_pixels=96,
        n_bins=n_bins,
        coherence=coherence,
        skew=0.7,
        seed=seed,
    )
    run_prepared(kernel, config, variant)


@settings(**COMMON)
@given(machine=MACHINES, variant=VARIANTS, seed=st.integers(0, 1000),
       density=st.floats(0.02, 0.2))
def test_tms_random(machine, variant, seed, density):
    config = MachineConfig(**machine)
    kernel = Tms(
        config.n_threads, rows=24, cols=48, density=density, seed=seed
    )
    run_prepared(kernel, config, variant)


@settings(**COMMON)
@given(machine=MACHINES, variant=VARIANTS, seed=st.integers(0, 1000),
       run_mean=st.floats(1.0, 4.0))
def test_gbc_random(machine, variant, seed, run_mean):
    config = MachineConfig(**machine)
    kernel = Gbc(
        config.n_threads,
        n_objects=80,
        n_cells=48,
        run_mean=run_mean,
        seed=seed,
    )
    run_prepared(kernel, config, variant)


@settings(**COMMON)
@given(machine=MACHINES, variant=VARIANTS, seed=st.integers(0, 1000))
def test_smc_random(machine, variant, seed):
    config = MachineConfig(**machine)
    kernel = Smc(config.n_threads, n_particles=48, dim=5, seed=seed)
    run_prepared(kernel, config, variant)


@settings(**COMMON)
@given(machine=MACHINES, variant=VARIANTS, seed=st.integers(0, 1000))
def test_gps_random(machine, variant, seed):
    config = MachineConfig(**machine)
    kernel = Gps(
        config.n_threads,
        n_objects=40,
        n_constraints=60,
        iterations=2,
        locality=8,
        seed=seed,
    )
    run_prepared(kernel, config, variant)


@settings(**COMMON)
@given(machine=MACHINES, variant=VARIANTS, seed=st.integers(0, 1000))
def test_mfp_random(machine, variant, seed):
    config = MachineConfig(**machine)
    kernel = Mfp(
        config.n_threads, n_nodes=30, n_edges=50, locality=6, seed=seed
    )
    run_prepared(kernel, config, variant)


@settings(**COMMON)
@given(machine=MACHINES, variant=VARIANTS, seed=st.integers(0, 1000),
       fill=st.floats(0.1, 0.8))
def test_fs_random(machine, variant, seed, fill):
    config = MachineConfig(**machine)
    kernel = Fs(
        config.n_threads, n_blocks=5, block=4, fill=fill, seed=seed
    )
    run_prepared(kernel, config, variant)


@settings(deadline=None, max_examples=8,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1000), variant=VARIANTS)
def test_glsc_policies_preserve_correctness(seed, variant):
    """Every GLSC policy combination must still be *correct*."""
    for overrides in (
        dict(glsc_fail_on_miss=True),
        dict(glsc_alias_in_gather=True),
        dict(glsc_fail_on_link_eviction=False),
        dict(glsc_buffer_entries=4),
        dict(gsu_combine_lines=False),
        dict(prefetch_enabled=False),
    ):
        config = MachineConfig(
            n_cores=2, threads_per_core=2, simd_width=4,
            max_cycles=3_000_000, **overrides,
        )
        kernel = Hip(
            config.n_threads,
            n_pixels=64,
            n_bins=8,
            coherence=0.5,
            skew=0.5,
            seed=seed,
        )
        run_prepared(kernel, config, variant)
