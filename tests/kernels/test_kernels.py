"""Correctness tests for all seven benchmark kernels + microbenchmark.

Every kernel must produce oracle-correct results in both variants,
across SIMD widths and topologies — this is the load-bearing test that
the atomicity machinery (ll/sc, GLSC reservations, locks) actually
protects the kernels' shared state.
"""

import pytest

from repro.kernels.micro import SCENARIOS, Micro
from repro.kernels.registry import KERNEL_ORDER, KERNELS, make_kernel
from repro.sim.config import MachineConfig
from repro.sim.runner import run_kernel, run_prepared

TOPOLOGIES = [
    dict(n_cores=1, threads_per_core=1),
    dict(n_cores=2, threads_per_core=2),
    dict(n_cores=4, threads_per_core=4),
]


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
@pytest.mark.parametrize("variant", ["base", "glsc"])
@pytest.mark.parametrize("topo", TOPOLOGIES, ids=["1x1", "2x2", "4x4"])
def test_kernel_verifies(kernel, variant, topo):
    config = MachineConfig(simd_width=4, **topo)
    result = run_kernel(kernel, "tiny", config, variant)
    assert result.stats.cycles > 0


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
@pytest.mark.parametrize("width", [1, 4, 16])
def test_kernel_verifies_across_widths(kernel, width):
    config = MachineConfig(n_cores=2, threads_per_core=2, simd_width=width)
    run_kernel(kernel, "tiny", config, "glsc")


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
def test_glsc_reduces_instructions_or_matches(kernel):
    """GLSC must not blow up the instruction count on tiny datasets
    beyond the retry overhead its failure rate implies."""
    config = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
    base = run_kernel(kernel, "tiny", config, "base").stats
    glsc = run_kernel(kernel, "tiny", config, "glsc").stats
    assert glsc.total_instructions < 2.5 * base.total_instructions


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
def test_base_variant_never_fails_glsc_ops(kernel):
    config = MachineConfig(n_cores=2, threads_per_core=1, simd_width=4)
    stats = run_kernel(kernel, "tiny", config, "base").stats
    assert stats.gatherlink_count == 0
    assert stats.scattercond_count == 0


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
def test_glsc_variant_uses_glsc(kernel):
    config = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
    stats = run_kernel(kernel, "tiny", config, "glsc").stats
    assert stats.gatherlink_count > 0
    assert stats.scattercond_count > 0


def test_failure_rate_zero_without_contention_or_aliasing():
    """TMS tiny at 1x1 with unique columns -> no element failures."""
    config = MachineConfig(n_cores=1, threads_per_core=1, simd_width=1)
    stats = run_kernel("tms", "tiny", config, "glsc").stats
    assert stats.glsc_failure_rate == 0.0


def test_hip_alias_rate_tracks_dataset():
    config = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
    a = run_kernel("hip", "A", config, "glsc").stats
    random = run_kernel("hip", "random", config, "glsc").stats
    assert a.glsc_failure_rate > 0.25
    assert random.glsc_failure_rate < 0.10


def test_gbc_failures_are_aliases_at_1x1():
    config = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
    stats = run_kernel("gbc", "tiny", config, "glsc").stats
    failures = stats.glsc_element_failures
    assert failures["thread_conflict"] == 0
    assert failures["eviction"] == 0


def test_kernel_one_shot_lifecycle():
    kernel = make_kernel("hip", "tiny", 1)
    config = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
    run_prepared(kernel, config, "base")
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        run_prepared(kernel, config, "base")  # already allocated


def test_registry_contents():
    assert set(KERNEL_ORDER) == set(KERNELS)
    for name, cls in KERNELS.items():
        assert cls.name == name
        assert cls.atomic_op != "?"


class TestMicro:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("variant", ["base", "glsc"])
    def test_scenarios_verify(self, scenario, variant):
        config = MachineConfig(n_cores=2, threads_per_core=2, simd_width=4)
        kernel = Micro(config.n_threads, scenario=scenario, iterations=8)
        run_prepared(kernel, config, variant, warm=True)

    def test_scenario_b_combines_lines(self):
        config = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
        kernel = Micro(1, scenario="B", iterations=16)
        stats = run_prepared(kernel, config, "glsc", warm=True)
        assert stats.l1_accesses_saved_by_combining > 0

    def test_scenario_c_does_not_combine(self):
        config = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
        kernel = Micro(1, scenario="C", iterations=16)
        stats = run_prepared(kernel, config, "glsc", warm=True)
        assert stats.l1_accesses_saved_by_combining == 0

    def test_scenario_d_serializes_aliases(self):
        config = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
        kernel = Micro(1, scenario="D", iterations=8)
        stats = run_prepared(kernel, config, "glsc", warm=True)
        # All lanes alias: 3 of 4 elements fail per attempt round.
        assert stats.glsc_element_failures["alias"] > 0

    def test_invalid_scenario_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            Micro(1, scenario="Z")
