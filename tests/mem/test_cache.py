"""Unit tests for the L1 cache model (tags, LRU, GLSC entries)."""

import pytest

from repro.errors import SimulationError
from repro.mem.cache import L1Cache, L1Line, MSI_M, MSI_S
from repro.mem.layout import LineGeometry


@pytest.fixture
def cache():
    # 4 sets x 2 ways, 64B lines: line addresses 0,256,512... share set 0.
    return L1Cache(core_id=0, n_sets=4, assoc=2, geometry=LineGeometry(64))


def set0_line(k):
    """The k-th distinct line address mapping to set 0."""
    return k * 4 * 64


class TestLookupInstall:
    def test_miss_then_hit(self, cache):
        assert cache.lookup(0) is None
        cache.install(0, MSI_S, now=1)
        line = cache.lookup(0)
        assert line is not None and line.state == MSI_S

    def test_double_install_rejected(self, cache):
        cache.install(0, MSI_S, now=1)
        with pytest.raises(SimulationError):
            cache.install(0, MSI_S, now=2)

    def test_no_eviction_returns_sentinel(self, cache):
        evicted = cache.install(0, MSI_S, now=1)
        assert evicted is not None and evicted.line_addr == -1

    def test_lru_eviction(self, cache):
        cache.install(set0_line(0), MSI_S, now=1)
        cache.install(set0_line(1), MSI_S, now=2)
        cache.touch(cache.lookup(set0_line(0)), now=3)
        evicted = cache.install(set0_line(2), MSI_S, now=4)
        assert evicted.line_addr == set0_line(1)
        assert cache.lookup(set0_line(0)) is not None
        assert cache.lookup(set0_line(1)) is None

    def test_victim_filter_protects_linked_lines(self, cache):
        cache.install(set0_line(0), MSI_S, now=1)
        cache.install(set0_line(1), MSI_S, now=2)
        cache.lookup(set0_line(0)).glsc_valid = True

        def not_linked(line):
            return not line.glsc_valid

        evicted = cache.install(set0_line(2), MSI_S, now=3, victim_ok=not_linked)
        assert evicted.line_addr == set0_line(1)

    def test_victim_filter_can_refuse_install(self, cache):
        cache.install(set0_line(0), MSI_S, now=1)
        cache.install(set0_line(1), MSI_S, now=2)
        for k in range(2):
            cache.lookup(set0_line(k)).glsc_valid = True

        refused = cache.install(
            set0_line(2), MSI_S, now=3, victim_ok=lambda l: not l.glsc_valid
        )
        assert refused is None
        assert cache.lookup(set0_line(2)) is None


class TestStateTransitions:
    def test_invalidate(self, cache):
        cache.install(0, MSI_M, now=1)
        line = cache.invalidate(0)
        assert line.state == MSI_M
        assert cache.lookup(0) is None
        assert cache.invalidate(0) is None

    def test_downgrade(self, cache):
        cache.install(0, MSI_M, now=1)
        line = cache.downgrade(0)
        assert line.state == MSI_S

    def test_downgrade_missing_line(self, cache):
        assert cache.downgrade(0) is None


class TestGlscEntry:
    def test_clear_glsc(self):
        line = L1Line(0, MSI_S, now=0)
        line.glsc_valid = True
        line.glsc_tid = 2
        line.clear_glsc()
        assert not line.glsc_valid and line.glsc_tid == -1

    def test_repr_shows_glsc(self):
        line = L1Line(64, MSI_S, now=0)
        line.glsc_valid = True
        line.glsc_tid = 1
        assert "glsc=t1" in repr(line)


class TestOccupancy:
    def test_occupancy_and_resident_lines(self, cache):
        cache.install(0, MSI_S, now=1)
        cache.install(64, MSI_S, now=2)
        assert cache.occupancy() == 2
        addrs = {line.line_addr for line in cache.resident_lines()}
        assert addrs == {0, 64}

    def test_bad_geometry_rejected(self):
        with pytest.raises(SimulationError):
            L1Cache(0, 0, 2, LineGeometry(64))
