"""Unit and property tests for the MSI directory coherence controller."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import MSI_M, MSI_S
from repro.mem.coherence import (
    CoherenceSystem,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_MEM,
    LEVEL_REMOTE,
)
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats


def make_system(**overrides):
    defaults = dict(
        n_cores=2,
        threads_per_core=2,
        prefetch_enabled=False,
    )
    defaults.update(overrides)
    config = MachineConfig(**defaults)
    stats = MachineStats()
    return CoherenceSystem(config, stats), config, stats


ADDR = 0x1000


class TestReadPath:
    def test_cold_read_goes_to_memory(self):
        sys_, cfg, stats = make_system()
        access = sys_.read(0, 0, ADDR, now=0)
        assert access.level == LEVEL_MEM
        assert access.latency == cfg.l1_hit_latency + cfg.l2_latency + cfg.mem_latency
        assert stats.l1_misses == 1 and stats.l2_misses == 1

    def test_second_read_hits_l1(self):
        sys_, cfg, stats = make_system()
        sys_.read(0, 0, ADDR, now=0)
        access = sys_.read(0, 0, ADDR, now=1)
        assert access.level == LEVEL_L1
        assert access.latency == cfg.l1_hit_latency
        assert stats.l1_hits == 1

    def test_same_line_different_word_hits(self):
        sys_, cfg, _ = make_system()
        sys_.read(0, 0, ADDR, now=0)
        access = sys_.read(0, 0, ADDR + 60, now=1)
        assert access.level == LEVEL_L1

    def test_other_core_read_is_l2_hit(self):
        sys_, cfg, _ = make_system()
        sys_.read(0, 0, ADDR, now=0)
        access = sys_.read(1, 0, ADDR, now=10)  # bank idle again
        assert access.level == LEVEL_L2
        assert access.latency == cfg.l1_hit_latency + cfg.l2_latency

    def test_same_bank_accesses_queue(self):
        sys_, cfg, _ = make_system()
        sys_.read(0, 0, ADDR, now=0)
        # A second miss to the same line's bank in the same cycle waits
        # for the bank to free up.
        access = sys_.read(1, 0, ADDR, now=0)
        assert access.latency > cfg.l1_hit_latency + cfg.l2_latency
        assert (
            access.latency
            <= cfg.l1_hit_latency + cfg.l2_latency + cfg.l2_bank_busy_cycles
        )

    def test_read_of_remote_dirty_line_downgrades_owner(self):
        sys_, cfg, stats = make_system()
        sys_.write(0, 0, ADDR, now=0)
        access = sys_.read(1, 0, ADDR, now=1)
        assert access.level == LEVEL_REMOTE
        line = sys_.l1s[0].lookup(sys_.geometry.line_addr(ADDR))
        assert line.state == MSI_S
        entry = sys_.l2.lookup(sys_.geometry.line_addr(ADDR))
        assert entry.owner is None and entry.sharers == {0, 1}
        assert stats.writebacks == 1


class TestWritePath:
    def test_write_installs_modified(self):
        sys_, _, _ = make_system()
        sys_.write(0, 0, ADDR, now=0)
        line = sys_.l1s[0].lookup(sys_.geometry.line_addr(ADDR))
        assert line.state == MSI_M
        entry = sys_.l2.lookup(sys_.geometry.line_addr(ADDR))
        assert entry.owner == 0

    def test_upgrade_invalidates_sharers(self):
        sys_, _, stats = make_system()
        sys_.read(0, 0, ADDR, now=0)
        sys_.read(1, 0, ADDR, now=1)
        access = sys_.write(0, 0, ADDR, now=2)
        assert access.level == LEVEL_REMOTE
        assert sys_.l1s[1].lookup(sys_.geometry.line_addr(ADDR)) is None
        assert stats.invalidations_sent == 1

    def test_write_miss_steals_dirty_line(self):
        sys_, _, stats = make_system()
        sys_.write(0, 0, ADDR, now=0)
        sys_.write(1, 0, ADDR, now=1)
        line_addr = sys_.geometry.line_addr(ADDR)
        assert sys_.l1s[0].lookup(line_addr) is None
        entry = sys_.l2.lookup(line_addr)
        assert entry.owner == 1
        assert stats.writebacks == 1

    def test_repeated_write_hits_in_m(self):
        sys_, cfg, _ = make_system()
        sys_.write(0, 0, ADDR, now=0)
        access = sys_.write(0, 0, ADDR + 4, now=1)
        assert access.level == LEVEL_L1
        assert access.latency == cfg.l1_hit_latency


class TestScalarLlSc:
    def test_ll_then_sc_succeeds(self):
        sys_, _, _ = make_system()
        sys_.scalar_ll(0, 0, ADDR, now=0)
        access, ok = sys_.scalar_sc(0, 0, ADDR, now=1)
        assert ok

    def test_sc_without_ll_fails(self):
        sys_, _, _ = make_system()
        _, ok = sys_.scalar_sc(0, 0, ADDR, now=0)
        assert not ok

    def test_intervening_remote_write_kills_reservation(self):
        sys_, _, _ = make_system()
        sys_.scalar_ll(0, 0, ADDR, now=0)
        sys_.write(1, 0, ADDR, now=1)
        _, ok = sys_.scalar_sc(0, 0, ADDR, now=2)
        assert not ok

    def test_intervening_same_core_write_kills_reservation(self):
        sys_, _, _ = make_system()
        sys_.scalar_ll(0, 0, ADDR, now=0)
        sys_.write(0, 1, ADDR, now=1)  # other SMT slot, same core
        _, ok = sys_.scalar_sc(0, 0, ADDR, now=2)
        assert not ok

    def test_write_to_other_line_preserves_reservation(self):
        sys_, _, _ = make_system()
        sys_.scalar_ll(0, 0, ADDR, now=0)
        sys_.write(1, 0, ADDR + 4096, now=1)
        _, ok = sys_.scalar_sc(0, 0, ADDR, now=2)
        assert ok

    def test_sc_consumes_reservation(self):
        sys_, _, _ = make_system()
        sys_.scalar_ll(0, 0, ADDR, now=0)
        sys_.scalar_sc(0, 0, ADDR, now=1)
        _, ok = sys_.scalar_sc(0, 0, ADDR, now=2)
        assert not ok

    def test_racing_sc_only_one_wins(self):
        sys_, _, _ = make_system()
        sys_.scalar_ll(0, 0, ADDR, now=0)
        sys_.scalar_ll(1, 0, ADDR, now=1)
        _, ok_a = sys_.scalar_sc(0, 0, ADDR, now=2)
        _, ok_b = sys_.scalar_sc(1, 0, ADDR, now=3)
        assert ok_a and not ok_b


class TestGlscTransactions:
    def test_link_then_conditional_write_succeeds(self):
        sys_, _, _ = make_system()
        _, linked, cause = sys_.read_linked(0, 0, ADDR, now=0)
        assert linked and cause is None
        _, ok, cause = sys_.write_conditional(0, 0, ADDR, now=1)
        assert ok and cause is None

    def test_conditional_write_without_link_fails(self):
        sys_, _, _ = make_system()
        sys_.read(0, 0, ADDR, now=0)
        _, ok, cause = sys_.write_conditional(0, 0, ADDR, now=1)
        assert not ok and cause == "thread_conflict"

    def test_conditional_write_consumes_link(self):
        sys_, _, _ = make_system()
        sys_.read_linked(0, 0, ADDR, now=0)
        sys_.write_conditional(0, 0, ADDR, now=1)
        _, ok, _ = sys_.write_conditional(0, 0, ADDR, now=2)
        assert not ok

    def test_remote_write_kills_link(self):
        sys_, _, _ = make_system()
        sys_.read_linked(0, 0, ADDR, now=0)
        sys_.write(1, 0, ADDR, now=1)
        _, ok, cause = sys_.write_conditional(0, 0, ADDR, now=2)
        assert not ok and cause == "thread_conflict"

    def test_remote_read_preserves_link(self):
        sys_, _, _ = make_system()
        sys_.read_linked(0, 0, ADDR, now=0)
        sys_.read(1, 0, ADDR, now=1)
        _, ok, _ = sys_.write_conditional(0, 0, ADDR, now=2)
        assert ok

    def test_foreign_smt_link_fails_fast(self):
        sys_, _, _ = make_system()
        sys_.read_linked(0, 0, ADDR, now=0)
        _, linked, cause = sys_.read_linked(0, 1, ADDR, now=1)
        assert not linked and cause == "link_stolen"

    def test_same_slot_can_relink(self):
        sys_, _, _ = make_system()
        sys_.read_linked(0, 0, ADDR, now=0)
        _, linked, _ = sys_.read_linked(0, 0, ADDR, now=1)
        assert linked

    def test_links_on_different_cores_coexist(self):
        sys_, _, _ = make_system()
        _, linked_a, _ = sys_.read_linked(0, 0, ADDR, now=0)
        _, linked_b, _ = sys_.read_linked(1, 0, ADDR, now=1)
        assert linked_a and linked_b
        # First conditional write wins, second loses its reservation.
        _, ok_a, _ = sys_.write_conditional(0, 0, ADDR, now=2)
        _, ok_b, cause = sys_.write_conditional(1, 0, ADDR, now=3)
        assert ok_a and not ok_b and cause == "thread_conflict"

    def test_wrong_slot_conditional_write_fails(self):
        sys_, _, _ = make_system()
        sys_.read_linked(0, 0, ADDR, now=0)
        _, ok, _ = sys_.write_conditional(0, 1, ADDR, now=1)
        assert not ok

    def test_fail_on_miss_policy(self):
        sys_, _, _ = make_system(glsc_fail_on_miss=True)
        _, linked, cause = sys_.read_linked(0, 0, ADDR, now=0)
        assert not linked and cause == "miss_policy"
        # The fill happened in the background: a retry hits and links.
        _, linked, _ = sys_.read_linked(0, 0, ADDR, now=1)
        assert linked

    def test_link_eviction_protection(self):
        # 2-way L1: two linked lines in one set, third link must fail.
        sys_, cfg, _ = make_system(
            l1_size_bytes=2 * 64 * 4, l1_assoc=2
        )  # 4 sets x 2 ways
        set_stride = 4 * 64
        a, b, c = 0x0, set_stride, 2 * set_stride
        assert sys_.read_linked(0, 0, a, now=0)[1]
        assert sys_.read_linked(0, 0, b, now=1)[1]
        _, linked, cause = sys_.read_linked(0, 0, c, now=2)
        assert not linked and cause == "eviction"
        # Both original links survive.
        _, ok_a, _ = sys_.write_conditional(0, 0, a, now=3)
        _, ok_b, _ = sys_.write_conditional(0, 0, b, now=4)
        assert ok_a and ok_b

    def test_eviction_kills_link_when_unprotected(self):
        sys_, _, _ = make_system(
            l1_size_bytes=2 * 64 * 4,
            l1_assoc=2,
            glsc_fail_on_link_eviction=False,
        )
        set_stride = 4 * 64
        a, b, c = 0x0, set_stride, 2 * set_stride
        sys_.read_linked(0, 0, a, now=0)
        sys_.read_linked(0, 0, b, now=1)
        _, linked, _ = sys_.read_linked(0, 0, c, now=2)
        assert linked  # evicted line a's link instead
        _, ok_a, cause = sys_.write_conditional(0, 0, a, now=3)
        assert not ok_a and cause == "eviction"


class TestInclusionAndBackInvalidation:
    def test_l2_eviction_back_invalidates_l1(self):
        sys_, _, _ = make_system(
            l2_size_bytes=2 * 64 * 2, l2_assoc=2, l2_banks=1
        )  # tiny L2: 2 sets x 2 ways
        set_stride = 2 * 64
        lines = [k * set_stride for k in range(3)]
        sys_.read(0, 0, lines[0], now=0)
        sys_.read(0, 0, lines[1], now=1)
        sys_.read(0, 0, lines[2], now=2)  # evicts lines[0] from L2
        assert sys_.l1s[0].lookup(lines[0]) is None
        sys_.check_invariants()

    def test_l2_eviction_kills_glsc_link(self):
        sys_, _, _ = make_system(
            l2_size_bytes=2 * 64 * 2, l2_assoc=2, l2_banks=1
        )
        set_stride = 2 * 64
        lines = [k * set_stride for k in range(3)]
        sys_.read_linked(0, 0, lines[0], now=0)
        sys_.read(0, 0, lines[1], now=1)
        sys_.read(0, 0, lines[2], now=2)
        _, ok, cause = sys_.write_conditional(0, 0, lines[0], now=3)
        assert not ok and cause == "eviction"


class TestPrefetcher:
    def test_stride_stream_prefetches(self):
        sys_, cfg, stats = make_system(prefetch_enabled=True)
        for k in range(3):
            sys_.read(0, 0, k * 64, now=k)
        assert stats.prefetches_issued > 0
        # The next line in the stream should now hit.
        access = sys_.read(0, 0, 3 * 64, now=10)
        assert access.level == LEVEL_L1
        assert stats.prefetch_hits >= 1

    def test_prefetch_keeps_invariants(self):
        sys_, _, _ = make_system(prefetch_enabled=True)
        for k in range(8):
            sys_.read(0, 0, k * 64, now=k)
            sys_.write(1, 0, k * 64 + 4096, now=k)
        sys_.check_invariants()


class TestRandomizedInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["r", "w", "ll", "sc", "rl", "wc"]),
                st.integers(0, 1),   # core
                st.integers(0, 1),   # slot
                st.integers(0, 24),  # word index within a small region
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_random_traffic_preserves_invariants(self, ops):
        sys_, _, _ = make_system(
            l1_size_bytes=4 * 64 * 2, l1_assoc=2,
            l2_size_bytes=8 * 64 * 2, l2_assoc=2, l2_banks=1,
            prefetch_enabled=True,
        )
        for now, (op, core, slot, word) in enumerate(ops):
            addr = 0x400 + word * 4
            if op == "r":
                sys_.read(core, slot, addr, now)
            elif op == "w":
                sys_.write(core, slot, addr, now)
            elif op == "ll":
                sys_.scalar_ll(core, slot, addr, now)
            elif op == "sc":
                sys_.scalar_sc(core, slot, addr, now)
            elif op == "rl":
                sys_.read_linked(core, slot, addr, now)
            elif op == "wc":
                sys_.write_conditional(core, slot, addr, now)
        sys_.check_invariants()
