"""Unit tests for directory entries and the inclusive L2."""

import pytest

from repro.errors import SimulationError
from repro.mem.directory import DirectoryEntry
from repro.mem.l2 import L2Cache
from repro.mem.layout import LineGeometry


class TestDirectoryEntry:
    def test_sharers(self):
        e = DirectoryEntry(0, now=0)
        e.add_sharer(1)
        e.add_sharer(2)
        assert e.sharers == {1, 2} and e.owner is None

    def test_owner_is_sole_sharer(self):
        e = DirectoryEntry(0, now=0)
        e.add_sharer(1)
        e.set_owner(3)
        assert e.owner == 3 and e.sharers == {3}

    def test_add_sharer_while_owned_by_other_rejected(self):
        e = DirectoryEntry(0, now=0)
        e.set_owner(1)
        with pytest.raises(SimulationError):
            e.add_sharer(2)

    def test_clear_owner_keeps_sharer(self):
        e = DirectoryEntry(0, now=0)
        e.set_owner(1)
        e.clear_owner()
        assert e.owner is None and e.sharers == {1}

    def test_drop(self):
        e = DirectoryEntry(0, now=0)
        e.set_owner(1)
        e.drop(1)
        assert e.owner is None and e.sharers == set()

    def test_check_detects_inconsistency(self):
        e = DirectoryEntry(0, now=0)
        e.sharers = {1, 2}
        e.owner = 1
        with pytest.raises(SimulationError):
            e.check()


@pytest.fixture
def l2():
    # 2 sets x 2 ways: lines 0, 128, 256... map to set 0.
    return L2Cache(n_sets=2, assoc=2, n_banks=2, geometry=LineGeometry(64))


def set0_line(k):
    return k * 2 * 64


class TestL2:
    def test_fetch_miss_then_hit(self, l2):
        entry, hit, victim = l2.fetch(0, now=1)
        assert not hit and victim is None and entry.line_addr == 0
        entry2, hit2, _ = l2.fetch(0, now=2)
        assert hit2 and entry2 is entry

    def test_lru_victim_on_overflow(self, l2):
        l2.fetch(set0_line(0), now=1)
        l2.fetch(set0_line(1), now=2)
        l2.fetch(set0_line(0), now=3)  # refresh
        _, _, victim = l2.fetch(set0_line(2), now=4)
        assert victim is not None and victim.line_addr == set0_line(1)

    def test_victim_carries_directory_state(self, l2):
        entry, _, _ = l2.fetch(set0_line(0), now=1)
        entry.add_sharer(0)
        l2.fetch(set0_line(1), now=2)
        _, _, victim = l2.fetch(set0_line(2), now=3)
        assert victim.sharers == {0}

    def test_bank_of(self, l2):
        assert l2.bank_of(0) == 0
        assert l2.bank_of(64) == 1

    def test_occupancy_and_entries(self, l2):
        l2.fetch(0, now=1)
        l2.fetch(64, now=1)
        assert l2.occupancy() == 2
        assert {e.line_addr for e in l2.entries()} == {0, 64}

    def test_evict_for_test(self, l2):
        l2.fetch(0, now=1)
        assert l2.evict_for_test(0).line_addr == 0
        assert l2.lookup(0) is None
        assert l2.evict_for_test(0) is None
