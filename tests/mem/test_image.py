"""Unit tests for the simulated memory image and allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AllocationError, MemoryError_
from repro.mem.image import MemoryImage


@pytest.fixture
def image():
    return MemoryImage(size_bytes=1 << 16)


class TestAllocator:
    def test_line_aligned_by_default(self, image):
        a = image.alloc(4)
        b = image.alloc(4)
        assert a % 64 == 0 and b % 64 == 0
        assert a != b

    def test_null_line_reserved(self, image):
        assert image.alloc(4) >= 64

    def test_custom_alignment(self, image):
        addr = image.alloc(4, align=256)
        assert addr % 256 == 0

    def test_word_alignment_required_for_align(self, image):
        with pytest.raises(AllocationError):
            image.alloc(4, align=3)

    def test_exhaustion(self):
        image = MemoryImage(size_bytes=256)
        with pytest.raises(AllocationError):
            image.alloc(1024)

    def test_zero_bytes_rejected(self, image):
        with pytest.raises(AllocationError):
            image.alloc(0)

    def test_bad_size_rejected(self):
        with pytest.raises(AllocationError):
            MemoryImage(size_bytes=10)


class TestWordAccess:
    def test_store_load_roundtrip(self, image):
        addr = image.alloc(4)
        image.store_word(addr, 3.5)
        assert image.load_word(addr) == 3.5

    def test_initial_zero(self, image):
        addr = image.alloc(64)
        assert image.load_word(addr + 32) == 0

    def test_out_of_range(self, image):
        with pytest.raises(MemoryError_):
            image.load_word(1 << 20)

    def test_load_words(self, image):
        view = image.alloc_array([1, 2, 3, 4])
        assert image.load_words(view.base, 4) == [1, 2, 3, 4]

    def test_load_words_range_check(self, image):
        with pytest.raises(MemoryError_):
            image.load_words(image.size_bytes - 8, 100)


class TestArrayView:
    def test_alloc_array(self, image):
        view = image.alloc_array([5, 6, 7])
        assert view.to_list() == [5, 6, 7]
        assert len(view) == 3

    def test_addr_arithmetic(self, image):
        view = image.alloc_array([0, 0])
        assert view.addr(1) == view.base + 4
        with pytest.raises(MemoryError_):
            view.addr(2)

    def test_setitem(self, image):
        view = image.alloc_zeros(4)
        view[2] = 9
        assert image.load_word(view.base + 8) == 9

    def test_fill_length_checked(self, image):
        view = image.alloc_zeros(2)
        with pytest.raises(MemoryError_):
            view.fill([1, 2, 3])
        view.fill([4, 5])
        assert view.to_list() == [4, 5]

    def test_iter(self, image):
        view = image.alloc_array([1, 2])
        assert list(view) == [1, 2]


class TestAllocatorProperties:
    @given(st.lists(st.integers(1, 300), min_size=1, max_size=30))
    def test_allocations_never_overlap(self, sizes):
        image = MemoryImage(size_bytes=1 << 18)
        regions = []
        for size in sizes:
            base = image.alloc(size)
            regions.append((base, base + size))
        regions.sort()
        for (_, end_a), (start_b, _) in zip(regions, regions[1:]):
            assert end_a <= start_b
