"""Unit and property tests for address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AlignmentError, ConfigError
from repro.mem.layout import WORD_BYTES, LineGeometry


@pytest.fixture
def geom():
    return LineGeometry(64)


class TestBasics:
    def test_words_per_line(self, geom):
        assert geom.words_per_line == 16

    def test_line_addr(self, geom):
        assert geom.line_addr(0) == 0
        assert geom.line_addr(63) == 0
        assert geom.line_addr(64) == 64
        assert geom.line_addr(130) == 128

    def test_line_offset(self, geom):
        assert geom.line_offset(68) == 4

    def test_same_line(self, geom):
        assert geom.same_line(0, 60)
        assert not geom.same_line(60, 64)

    def test_alignment_check(self, geom):
        geom.check_word_aligned(8)
        with pytest.raises(AlignmentError):
            geom.check_word_aligned(9)
        with pytest.raises(AlignmentError):
            geom.check_word_aligned(-4)

    def test_word_index(self, geom):
        assert geom.word_index(16) == 4

    def test_lines_spanned(self, geom):
        assert geom.lines_spanned(0, 64) == 1
        assert geom.lines_spanned(60, 8) == 2
        assert geom.lines_spanned(0, 65) == 2
        with pytest.raises(AlignmentError):
            geom.lines_spanned(0, 0)

    def test_set_and_bank_index(self, geom):
        assert geom.set_index(0, 128) == 0
        assert geom.set_index(64, 128) == 1
        assert geom.bank_index(64 * 17, 16) == 1

    def test_pow2_required(self):
        with pytest.raises(ConfigError):
            LineGeometry(48)
        with pytest.raises(ConfigError):
            LineGeometry(64).set_index(0, 100)


class TestProperties:
    @given(st.integers(0, 1 << 20))
    def test_line_addr_idempotent(self, addr):
        geom = LineGeometry(64)
        assert geom.line_addr(geom.line_addr(addr)) == geom.line_addr(addr)

    @given(st.integers(0, 1 << 20))
    def test_offset_plus_base_reconstructs(self, addr):
        geom = LineGeometry(64)
        assert geom.line_addr(addr) + geom.line_offset(addr) == addr

    @given(st.integers(0, 1 << 16).map(lambda w: w * WORD_BYTES))
    def test_word_index_roundtrip(self, addr):
        geom = LineGeometry(64)
        assert geom.word_index(addr) * WORD_BYTES == addr
