"""Unit tests for the per-thread multi-stream stride prefetcher."""

from repro.mem.prefetch import StridePrefetcher, TABLE_SIZE


def test_needs_two_matching_strides_to_arm():
    pf = StridePrefetcher(line_bytes=64, degree=2)
    assert pf.on_demand_miss(0, 0, 0) == []
    assert pf.on_demand_miss(0, 0, 64) == []  # first stride observed
    assert pf.on_demand_miss(0, 0, 128) == [192, 256]  # confirmed


def test_interleaved_streams_train_independently():
    """Three interleaved array walks (a[i], b[i], c[i]) each get their
    own stream — the pattern the single-stream design failed on."""
    pf = StridePrefetcher(line_bytes=64, degree=1)
    bases = (0, 1 << 20, 2 << 20)
    fired = {base: 0 for base in bases}
    for step in range(4):
        for base in bases:
            targets = pf.on_demand_miss(0, 0, base + step * 64)
            if targets:
                fired[base] += 1
                assert targets == [base + (step + 1) * 64]
    assert all(count >= 2 for count in fired.values())


def test_far_miss_allocates_new_stream():
    pf = StridePrefetcher(line_bytes=64, degree=1)
    pf.on_demand_miss(0, 0, 0)
    pf.on_demand_miss(0, 0, 64)
    assert pf.on_demand_miss(0, 0, 128) == [192]
    # A jump far outside the match window starts a fresh stream and
    # must not emit a bogus prefetch.
    assert pf.on_demand_miss(0, 0, 1 << 20) == []
    # The original stream is still trained.
    assert pf.on_demand_miss(0, 0, 192) == [256]


def test_negative_stride_supported():
    pf = StridePrefetcher(line_bytes=64, degree=1)
    pf.on_demand_miss(0, 0, 1024)
    pf.on_demand_miss(0, 0, 960)
    assert pf.on_demand_miss(0, 0, 896) == [832]


def test_negative_targets_dropped():
    pf = StridePrefetcher(line_bytes=64, degree=2)
    pf.on_demand_miss(0, 0, 128)
    pf.on_demand_miss(0, 0, 64)
    assert pf.on_demand_miss(0, 0, 0) == []  # -64, -128 both negative


def test_streams_are_per_thread():
    pf = StridePrefetcher(line_bytes=64, degree=1)
    pf.on_demand_miss(0, 0, 0)
    pf.on_demand_miss(0, 1, 64)   # different slot: separate table
    pf.on_demand_miss(0, 0, 64)
    assert pf.on_demand_miss(0, 0, 128) == [192]


def test_table_eviction_is_lru():
    pf = StridePrefetcher(line_bytes=64, degree=1)
    # Fill the table with far-apart streams.
    for k in range(TABLE_SIZE):
        pf.on_demand_miss(0, 0, k << 20)
    # Touch stream 0 so it is recently used.
    pf.on_demand_miss(0, 0, (0 << 20) + 64)
    # Allocate one more: stream for (1 << 20) is the LRU victim.
    pf.on_demand_miss(0, 0, 100 << 20)
    # Stream 0 survived and keeps training.
    assert pf.on_demand_miss(0, 0, (0 << 20) + 128) == [(0 << 20) + 192]


def test_disabled_prefetcher_is_silent():
    pf = StridePrefetcher(line_bytes=64, degree=2, enabled=False)
    for line in (0, 64, 128, 192):
        assert pf.on_demand_miss(0, 0, line) == []


def test_reset_forgets_training():
    pf = StridePrefetcher(line_bytes=64, degree=1)
    pf.on_demand_miss(0, 0, 0)
    pf.on_demand_miss(0, 0, 64)
    pf.reset()
    assert pf.on_demand_miss(0, 0, 128) == []
