"""Protocol-policy tests: registry, transition tables, MESI/MOESI.

The MSI policy's behaviour is pinned bitwise by the golden-equivalence
harness (``tests/bench/test_equivalence.py``) and exercised in detail
by ``test_coherence.py``; this module covers what the seam *adds* —
the registry, the declarative state machines, the E and O states, the
silent-upgrade traffic savings, and the reservation-kill semantics
under every protocol.
"""

import pytest

from repro.errors import ConfigError
from repro.mem.cache import MESI_E, MOESI_O, MSI_M, MSI_S
from repro.mem.coherence import (
    CoherenceSystem,
    LEVEL_L1,
    LEVEL_REMOTE,
)
from repro.mem.protocol import (
    CoherenceProtocol,
    DEFAULT_PROTOCOL,
    MesiProtocol,
    MoesiProtocol,
    MsiProtocol,
    describe_transitions,
    make_protocol,
    protocol_names,
    register_protocol,
)
from repro.obs import EventBus, MetricsSink
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats

PROTOCOLS = ("msi", "mesi", "moesi")

ADDR = 0x1000


def make_system(protocol, obs=None, **overrides):
    defaults = dict(
        n_cores=2,
        threads_per_core=2,
        prefetch_enabled=False,
        protocol=protocol,
    )
    defaults.update(overrides)
    config = MachineConfig(**defaults)
    stats = MachineStats()
    return CoherenceSystem(config, stats, obs=obs), config, stats


def line_of(sys_, core, addr=ADDR):
    return sys_.l1s[core].lookup(sys_.geometry.line_addr(addr))


def entry_of(sys_, addr=ADDR):
    return sys_.l2.lookup(sys_.geometry.line_addr(addr))


class TestRegistry:
    def test_builtin_names_in_registration_order(self):
        assert protocol_names() == ("msi", "mesi", "moesi")
        assert DEFAULT_PROTOCOL == "msi"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError):
            make_protocol("mosi", host=None)
        with pytest.raises(ConfigError):
            MachineConfig(protocol="mosi")

    def test_duplicate_registration_rejected(self):
        class Clone(MsiProtocol):
            name = "msi"

        with pytest.raises(ConfigError):
            register_protocol(Clone)

    def test_unnamed_protocol_rejected(self):
        class Nameless(CoherenceProtocol):
            pass

        with pytest.raises(ConfigError):
            register_protocol(Nameless)

    @pytest.mark.parametrize("name", PROTOCOLS)
    def test_config_selects_policy(self, name):
        sys_, _, _ = make_system(name)
        assert sys_.protocol.name == name


class TestTransitionTables:
    def test_msi_table(self):
        assert MsiProtocol.states() == ("I", "M", "S")
        for edge in (("I", "S"), ("I", "M"), ("S", "M"), ("M", "S"),
                     ("S", "I"), ("M", "I")):
            assert MsiProtocol.legal_transition(*edge)
        # MSI has no E: neither fills to it nor leaves it.
        assert not MsiProtocol.legal_transition("I", "E")
        assert not MsiProtocol.legal_transition("E", "M")
        # No spontaneous un-invalidation or self-loops.
        assert not MsiProtocol.legal_transition("I", "I")
        assert not MsiProtocol.legal_transition("S", "S")

    def test_mesi_extends_msi(self):
        assert MesiProtocol.TRANSITIONS > MsiProtocol.TRANSITIONS
        assert MesiProtocol.states() == ("E", "I", "M", "S")
        for edge in (("I", "E"), ("E", "M"), ("E", "S"), ("E", "I")):
            assert MesiProtocol.legal_transition(*edge)
        assert not MesiProtocol.legal_transition("S", "E")
        assert not MesiProtocol.legal_transition("M", "E")

    def test_moesi_owner_state(self):
        assert MoesiProtocol.states() == ("E", "I", "M", "O", "S")
        for edge in (("M", "O"), ("O", "M"), ("O", "I")):
            assert MoesiProtocol.legal_transition(*edge)
        # A remote read moves M to O (owner keeps the data), never
        # straight to S as in MSI/MESI.
        assert not MoesiProtocol.legal_transition("M", "S")
        # O never silently becomes S or E.
        assert not MoesiProtocol.legal_transition("O", "S")
        assert not MoesiProtocol.legal_transition("O", "E")

    def test_dirty_states_follow_protocol(self):
        assert MsiProtocol.dirty_states == {MSI_M}
        assert MesiProtocol.dirty_states == {MSI_M}
        assert MoesiProtocol.dirty_states == {MSI_M, MOESI_O}

    def test_describe_transitions_renders_every_edge(self):
        text = describe_transitions(MoesiProtocol)
        assert text.startswith("moesi: states E, I, M, O, S")
        assert "  M -> O" in text
        assert text.count("->") == len(MoesiProtocol.TRANSITIONS)


class TestMesiBehaviour:
    def test_sole_reader_fills_exclusive(self):
        sys_, _, _ = make_system("mesi")
        sys_.read(0, 0, ADDR, now=0)
        assert line_of(sys_, 0).state == MESI_E
        assert entry_of(sys_).owner == 0
        sys_.check_invariants()

    def test_second_reader_demotes_to_shared_without_writeback(self):
        sys_, _, stats = make_system("mesi")
        sys_.read(0, 0, ADDR, now=0)
        sys_.read(1, 0, ADDR, now=10)
        assert line_of(sys_, 0).state == MSI_S
        assert line_of(sys_, 1).state == MSI_S
        entry = entry_of(sys_)
        assert entry.owner is None and entry.sharers == {0, 1}
        # The forwarded line was clean: no writeback, unlike MSI's
        # unconditional one.
        assert stats.writebacks == 0
        assert sys_.protocol.counts["Fwd"] == 1
        sys_.check_invariants()

    def test_silent_upgrade_is_an_l1_hit(self):
        sys_, _, stats = make_system("mesi")
        sys_.read(0, 0, ADDR, now=0)
        access = sys_.write(0, 0, ADDR, now=1)
        assert access.level == LEVEL_L1
        assert line_of(sys_, 0).state == MSI_M
        counts = sys_.protocol.counts
        assert counts["silent_upgrade"] == 1
        assert counts["Upgrade"] == 0
        assert stats.l1_hits == 1
        sys_.check_invariants()

    def test_shared_write_still_pays_directory_upgrade(self):
        sys_, _, _ = make_system("mesi")
        sys_.read(0, 0, ADDR, now=0)
        sys_.read(1, 0, ADDR, now=10)
        access = sys_.write(0, 0, ADDR, now=20)
        assert access.level == LEVEL_REMOTE
        assert sys_.protocol.counts["Upgrade"] == 1
        assert line_of(sys_, 1) is None
        sys_.check_invariants()

    def test_dirty_forward_still_writes_back(self):
        sys_, _, stats = make_system("mesi")
        sys_.write(0, 0, ADDR, now=0)
        access = sys_.read(1, 0, ADDR, now=10)
        assert access.level == LEVEL_REMOTE
        assert line_of(sys_, 0).state == MSI_S
        assert stats.writebacks == 1
        sys_.check_invariants()


class TestMoesiBehaviour:
    def test_remote_read_of_dirty_line_moves_owner_to_o(self):
        sys_, _, stats = make_system("moesi")
        sys_.write(0, 0, ADDR, now=0)
        access = sys_.read(1, 0, ADDR, now=10)
        assert access.level == LEVEL_REMOTE
        assert line_of(sys_, 0).state == MOESI_O
        assert line_of(sys_, 1).state == MSI_S
        entry = entry_of(sys_)
        # MOESI's point: the owner keeps the dirty data, the requester
        # joins the sharers, and nothing is written back yet.
        assert entry.owner == 0 and entry.sharers == {0, 1}
        assert stats.writebacks == 0
        sys_.check_invariants()

    def test_owner_reclaims_exclusivity_with_upgrade(self):
        sys_, _, _ = make_system("moesi")
        sys_.write(0, 0, ADDR, now=0)
        sys_.read(1, 0, ADDR, now=10)
        access = sys_.write(0, 0, ADDR, now=20)
        assert access.level == LEVEL_REMOTE
        assert line_of(sys_, 0).state == MSI_M
        assert line_of(sys_, 1) is None
        assert sys_.protocol.counts["Upgrade"] == 1
        sys_.check_invariants()

    def test_writeback_deferred_until_o_line_dies(self):
        sys_, _, stats = make_system("moesi")
        sys_.write(0, 0, ADDR, now=0)
        sys_.read(1, 0, ADDR, now=10)       # M -> O, no writeback yet
        assert stats.writebacks == 0
        sys_.write(1, 0, ADDR, now=20)      # invalidates the O copy
        assert stats.writebacks == 1        # the deferred one happens now
        assert line_of(sys_, 0) is None
        sys_.check_invariants()

    def test_clean_exclusive_forward_dissolves_ownership(self):
        sys_, _, stats = make_system("moesi")
        sys_.read(0, 0, ADDR, now=0)        # fills E (MESI inheritance)
        assert line_of(sys_, 0).state == MESI_E
        sys_.read(1, 0, ADDR, now=10)
        assert line_of(sys_, 0).state == MSI_S
        assert entry_of(sys_).owner is None
        assert stats.writebacks == 0
        sys_.check_invariants()


class TestReservationsAcrossProtocols:
    """GLSC links must die on Inv and survive read forwards — under
    every protocol, because the reservation-kill mechanism is shared.
    """

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_remote_write_kills_glsc_link(self, protocol):
        sys_, _, _ = make_system(protocol)
        _, linked, _ = sys_.read_linked(0, 0, ADDR, now=0)
        assert linked
        sys_.write(1, 0, ADDR, now=10)
        sys_.check_invariants()
        _, ok, cause = sys_.write_conditional(0, 0, ADDR, now=20)
        assert not ok
        assert cause == "thread_conflict"

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_remote_read_forward_spares_glsc_link(self, protocol):
        sys_, _, _ = make_system(protocol)
        _, linked, _ = sys_.read_linked(0, 0, ADDR, now=0)
        assert linked
        sys_.read(1, 0, ADDR, now=10)       # forward, not an Inv
        sys_.check_invariants()
        _, ok, cause = sys_.write_conditional(0, 0, ADDR, now=20)
        assert ok and cause is None
        sys_.check_invariants()

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_scalar_reservation_killed_by_remote_write(self, protocol):
        sys_, _, _ = make_system(protocol)
        sys_.scalar_ll(0, 0, ADDR, now=0)
        sys_.write(1, 0, ADDR, now=10)
        assert not sys_.scalar_sc(0, 0, ADDR, now=20)[1]
        sys_.check_invariants()


class TestTrafficSavings:
    """MESI's acceptance criterion: read-then-write working sets cost
    one directory upgrade per line under MSI and zero under MESI.
    """

    def _read_modify_lines(self, protocol, lines=8):
        bus = EventBus()
        metrics = bus.attach(MetricsSink())
        sys_, cfg, _ = make_system(protocol, obs=bus)
        for i in range(lines):
            addr = ADDR + i * cfg.line_bytes
            sys_.read(0, 0, addr, now=i * 100)
            sys_.write(0, 0, addr, now=i * 100 + 50)
        sys_.check_invariants()
        return sys_.protocol.counts, metrics

    def test_mesi_eliminates_private_upgrades(self):
        msi, _ = self._read_modify_lines("msi")
        mesi, _ = self._read_modify_lines("mesi")
        assert msi["Upgrade"] == 8 and msi["silent_upgrade"] == 0
        assert mesi["Upgrade"] == 0 and mesi["silent_upgrade"] == 8
        # Same demand misses either way; the saving is pure traffic.
        assert msi["GetS"] == mesi["GetS"]

    def test_metrics_sink_mirrors_protocol_counts(self):
        counts, metrics = self._read_modify_lines("mesi")
        emitted = {kind: n for kind, n in counts.items() if n}
        assert dict(metrics.protocol_traffic) == emitted
        assert "protocol traffic:" in metrics.render()
        assert metrics.summary()["protocol_traffic"] == emitted
