"""Unit tests for the scalar ll/sc reservation file."""

import pytest

from repro.mem.layout import LineGeometry
from repro.mem.reservations import ReservationFile


@pytest.fixture
def resfile():
    return ReservationFile(LineGeometry(64))


class TestReservations:
    def test_set_and_hold(self, resfile):
        resfile.set(0, 1, 0x104)
        assert resfile.holds(0, 1, 0x104)
        # Same line, different word: still held (line granularity).
        assert resfile.holds(0, 1, 0x13C)
        assert not resfile.holds(0, 1, 0x140)

    def test_one_reservation_per_thread(self, resfile):
        resfile.set(0, 0, 0x100)
        resfile.set(0, 0, 0x200)
        assert not resfile.holds(0, 0, 0x100)
        assert resfile.holds(0, 0, 0x200)

    def test_clear_thread(self, resfile):
        resfile.set(0, 0, 0x100)
        resfile.clear_thread(0, 0)
        assert not resfile.holds(0, 0, 0x100)
        resfile.clear_thread(0, 0)  # idempotent

    def test_clear_line_kills_all_threads(self, resfile):
        resfile.set(0, 0, 0x100)
        resfile.set(1, 2, 0x11C)
        resfile.set(0, 1, 0x200)
        killed = resfile.clear_line(0x100)
        assert sorted(killed) == [(0, 0), (1, 2)]
        assert not resfile.holds(0, 0, 0x100)
        assert not resfile.holds(1, 2, 0x100)
        assert resfile.holds(0, 1, 0x200)

    def test_clear_core_line_is_core_local(self, resfile):
        resfile.set(0, 0, 0x100)
        resfile.set(1, 0, 0x100)
        killed = resfile.clear_core_line(0, 0x100)
        assert killed == [(0, 0)]
        assert not resfile.holds(0, 0, 0x100)
        assert resfile.holds(1, 0, 0x100)

    def test_holder_count_and_held_line(self, resfile):
        assert resfile.holder_count() == 0
        resfile.set(2, 3, 0x1C0)
        assert resfile.holder_count() == 1
        assert resfile.held_line(2, 3) == 0x1C0
        assert resfile.held_line(0, 0) is None
