"""warm_fill must leave the exact state of the per-read warm loop.

``Machine.warm_caches`` uses :meth:`CoherenceSystem.warm_fill` as a
fast path; its contract is *state equivalence* with the reference
loop::

    for core in range(n_cores):
        for line in range(first, limit, line_bytes):
            coherence.read(core, 0, line, now=0)

These tests snapshot every piece of warm-visible state — L1 line
contents (including GLSC and prefetched bits), L2 directory entries
(sharers, owner, recency), L2 bank clocks, and DRAM access counts —
after each path and require them identical.  Chaos injection disables
the fast path (it would desynchronize the RNG draw sequence), which is
also asserted.
"""

import pytest

from repro.errors import SimulationError
from repro.mem.coherence import CoherenceSystem
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats


def snapshot(coherence: CoherenceSystem):
    """Every observable of the warm-up: caches, directory, clocks."""
    l1_state = {}
    for core_id, l1 in coherence.l1s.items():
        lines = {}
        for cache_set in l1._sets:
            for line in cache_set.values():
                lines[line.line_addr] = (
                    line.state,
                    line.glsc_valid,
                    line.glsc_tid,
                    line.last_use,
                    line.prefetched,
                )
        l1_state[core_id] = lines
    l2_state = {
        entry.line_addr: (
            sorted(entry.sharers), entry.owner, entry.last_use
        )
        for entry in coherence.l2.entries()
    }
    return {
        "l1": l1_state,
        "l2": l2_state,
        "bank_free": list(coherence._bank_free),
        "dram_accesses": coherence.dram.accesses,
    }


def build(config: MachineConfig) -> CoherenceSystem:
    return CoherenceSystem(config, MachineStats())


def warm_slow(coherence: CoherenceSystem, first: int, limit: int) -> None:
    line_bytes = coherence.config.line_bytes
    for core in range(coherence.config.n_cores):
        for line in range(first, limit, line_bytes):
            coherence.read(core, 0, line, now=0)


@pytest.mark.parametrize("n_cores", [1, 2, 4])
def test_warm_fill_state_equals_slow_loop(n_cores):
    config = MachineConfig().with_topology(n_cores, 2)
    first = config.line_bytes
    # Enough lines to overflow L1 sets and trigger evictions, so the
    # equivalence covers the victim path, not just clean fills.
    limit = first + config.line_bytes * (config.l1_sets * config.l1_assoc + 64)

    fast = build(config)
    assert fast.can_warm_fill()
    fast.warm_fill(first, limit)

    slow = build(config)
    warm_slow(slow, first, limit)

    assert snapshot(fast) == snapshot(slow)


def test_warm_fill_idempotent_second_pass():
    """Re-warming already-resident lines matches the slow loop too

    (the hit path: the slow loop's demand hit clears the prefetched
    bit; warm_fill must do the same).
    """
    config = MachineConfig().with_topology(2, 2)
    first = config.line_bytes
    limit = first + config.line_bytes * 32

    fast = build(config)
    fast.warm_fill(first, limit)
    fast.warm_fill(first, limit)

    slow = build(config)
    warm_slow(slow, first, limit)
    warm_slow(slow, first, limit)

    assert snapshot(fast) == snapshot(slow)


def test_chaos_disables_fast_path():
    config = MachineConfig(chaos_reservation_loss=0.25)
    coherence = build(config)
    assert not coherence.can_warm_fill()
    with pytest.raises(SimulationError):
        coherence.warm_fill(config.line_bytes, config.line_bytes * 8)


def test_machine_warm_caches_uses_equivalent_state():
    """End-to-end: Machine.warm_caches (fast path) leaves the same

    coherence state as a hand-rolled slow warm on a second machine.
    """
    from repro.mem.image import MemoryImage
    from repro.sim.machine import Machine

    config = MachineConfig().with_topology(2, 2)

    def make_machine():
        image = MemoryImage(config.mem_size_bytes, config.geometry)
        image.alloc_words(512)
        machine = Machine(config, image=image)

        def program(ctx):
            yield ctx.alu()

        for _ in range(config.n_threads):
            machine.add_program(program)
        return machine

    fast = make_machine()
    fast.warm_caches()

    slow = make_machine()
    line_bytes = config.line_bytes
    for core in range(config.n_cores):
        for line in range(
            line_bytes, slow.image.bytes_allocated, line_bytes
        ):
            slow.coherence.read(core, 0, line, now=0)
    slow.coherence.prefetcher.reset()
    slow.stats.reset_counters()

    assert snapshot(fast.coherence) == snapshot(slow.coherence)
