"""Tests for the event bus: routing, flags, lifecycle."""

import pytest

from repro.errors import ConfigError
from repro.isa.instructions import Kind
from repro.obs.bus import EventBus, Sink
from repro.obs.events import CATEGORIES, CacheMiss, ReservationLost
from repro.sim.trace import TraceEvent


class Collect(Sink):
    def __init__(self, categories=None):
        self.categories = categories
        self.events = []
        self.closed = 0

    def on_event(self, event):
        self.events.append(event)

    def close(self):
        self.closed += 1


def instr_event():
    return TraceEvent(
        cycle=0, completion=3, thread=0, core=0, kind=Kind.ALU, sync=False
    )


class TestSubscription:
    def test_attach_returns_the_sink(self):
        bus = EventBus()
        sink = Collect()
        assert bus.attach(sink) is sink
        assert bus.sinks == [sink]

    def test_default_subscription_is_every_category(self):
        bus = EventBus()
        bus.attach(Collect())
        for category in CATEGORIES:
            assert bus.wants(category)

    def test_explicit_categories_override_the_default(self):
        bus = EventBus()
        bus.attach(Collect(), categories=("cache",))
        assert bus.wants("cache")
        assert not bus.wants("instr")
        assert not bus.wants("glsc")

    def test_sink_class_default_categories_respected(self):
        bus = EventBus()
        bus.attach(Collect(categories=("reservation",)))
        assert bus.wants("reservation")
        assert not bus.wants("cache")

    def test_unknown_category_rejected(self):
        bus = EventBus()
        with pytest.raises(ConfigError):
            bus.attach(Collect(), categories=("cache", "nope"))

    def test_wants_flags_track_attachments(self):
        bus = EventBus()
        assert not any(
            [bus.wants_instr, bus.wants_cache, bus.wants_coherence,
             bus.wants_reservation, bus.wants_glsc]
        )
        bus.attach(Collect(), categories=("cache", "glsc"))
        assert bus.wants_cache and bus.wants_glsc
        assert not bus.wants_instr
        assert not bus.wants_coherence
        assert not bus.wants_reservation


class TestDispatch:
    def test_events_route_by_category(self):
        bus = EventBus()
        cache_sink = bus.attach(Collect(), categories=("cache",))
        instr_sink = bus.attach(Collect(), categories=("instr",))
        everything = bus.attach(Collect())

        miss = CacheMiss(1, 0, 0, 0x40, "L1", "read")
        instr = instr_event()
        bus.emit(miss)
        bus.emit(instr)

        assert cache_sink.events == [miss]
        assert instr_sink.events == [instr]
        assert everything.events == [miss, instr]

    def test_emission_order_preserved(self):
        bus = EventBus()
        sink = bus.attach(Collect())
        events = [
            CacheMiss(i, 0, 0, 0x40 * i, "L1", "read") for i in range(5)
        ]
        for event in events:
            bus.emit(event)
        assert sink.events == events

    def test_tracer_is_a_valid_instr_sink(self):
        from repro.sim.trace import InstructionTrace

        bus = EventBus()
        trace = bus.attach(InstructionTrace())
        assert bus.wants_instr
        assert not bus.wants_cache  # Tracer.categories == ("instr",)
        event = instr_event()
        bus.emit(event)
        assert list(trace) == [event]


class TestLifecycle:
    def test_close_reaches_every_sink_once(self):
        bus = EventBus()
        first, second = bus.attach(Collect()), bus.attach(Collect())
        bus.close()
        bus.close()  # idempotent
        assert first.closed == 1
        assert second.closed == 1

    def test_context_manager_closes(self):
        sink = Collect()
        with EventBus() as bus:
            bus.attach(sink)
            bus.emit(ReservationLost(1, 0, 0, 0x40, "scalar", "chaos"))
        assert sink.closed == 1
        assert len(sink.events) == 1
