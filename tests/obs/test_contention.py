"""The contention observatory: attribution, marginals, determinism.

Two layers of test: synthetic events driven straight into the sink
(exact attribution semantics), and real observed runs (the marginal
cross-checks against MachineStats that the ISSUE's acceptance
criteria pin, plus bitwise determinism of the report).
"""

import json

import pytest

from repro.obs.bus import EventBus
from repro.obs.contention import (
    ContentionSink,
    DEFAULT_STORM_THRESHOLD,
    ENV_THREAD,
    _depth_bucket,
)
from repro.obs.events import ElementOutcome, Invalidation, ReservationLost
from repro.sim.executor import RunSpec, execute_spec


def loss(cycle, core, slot, line, cause, attacker=(-1, -1), kind="glsc"):
    return ReservationLost(
        cycle, core, slot, line, kind, cause, attacker[0], attacker[1]
    )


def outcome(cycle, core, slot, line, ok, lanes=1, op="scattercond",
            cause=None):
    return ElementOutcome(cycle, core, slot, line, op, lanes, ok, cause)


def observed_run(spec, **sink_kwargs):
    """One observed run: (summary, stats)."""
    config = spec.config()
    bus = EventBus()
    sink = bus.attach(
        ContentionSink(n_cores=config.n_cores, **sink_kwargs)
    )
    captured = {}
    stats = execute_spec(
        spec, obs=bus,
        on_machine=lambda m: captured.update(regions=m.image.regions),
    )
    bus.close()
    return sink.summary(regions=captured["regions"], stats=stats), stats


class TestDepthBucket:
    def test_log2_bins(self):
        assert _depth_bucket(1) == 1
        assert _depth_bucket(2) == 2
        assert _depth_bucket(3) == 2
        assert _depth_bucket(4) == 4
        assert _depth_bucket(7) == 4
        assert _depth_bucket(8) == 8


class TestSinkSemantics:
    def test_rejects_bad_ctor_args(self):
        with pytest.raises(ValueError):
            ContentionSink(n_cores=0)
        with pytest.raises(ValueError):
            ContentionSink(n_cores=2, window=0)

    def test_kill_attribution_by_global_tid(self):
        # 2 cores: (core=1, slot=1) is t3, (core=0, slot=0) is t0.
        sink = ContentionSink(n_cores=2)
        sink.on_event(
            loss(10, 1, 1, 0x100, "thread_conflict", attacker=(0, 0))
        )
        summary = sink.summary()
        assert summary.matrix == {0: {3: {"thread_conflict": 1}}}
        assert summary.row_sums() == {0: 1}
        assert summary.col_sums() == {3: 1}
        assert summary.total_kills == 1

    def test_unattributed_kill_lands_in_env_row(self):
        sink = ContentionSink(n_cores=2)
        sink.on_event(loss(10, 0, 0, 0x100, "chaos"))
        summary = sink.summary()
        assert summary.matrix == {ENV_THREAD: {0: {"chaos": 1}}}
        assert summary.to_dict()["kill_matrix"] == {
            "env": {"t0": {"chaos": 1}}
        }

    def test_consumed_is_not_a_kill(self):
        sink = ContentionSink(n_cores=2)
        sink.on_event(
            loss(5, 0, 0, 0x100, "consumed", attacker=(0, 0),
                 kind="scalar")
        )
        sink.on_event(
            loss(6, 1, 0, 0x140, "consumed", attacker=(1, 0))
        )
        summary = sink.summary()
        assert summary.total_kills == 0
        assert summary.matrix == {}
        assert summary.consumed == {"scalar": 1, "glsc": 1}

    def test_hot_lines_ranked_and_capped(self):
        sink = ContentionSink(n_cores=1, top_k=2)
        for _ in range(3):
            sink.on_event(loss(1, 0, 0, 0x200, "thread_conflict",
                               attacker=(0, 0)))
        sink.on_event(Invalidation(2, 0, 0x100, "remote_write"))
        sink.on_event(outcome(3, 0, 0, 0x300, ok=False, lanes=2,
                              cause="alias"))
        summary = sink.summary()
        assert [h["line_addr"] for h in summary.hot_lines] == [0x200, 0x300]
        assert summary.hot_lines[0]["kills"] == 3
        assert summary.hot_lines[1]["failed_lanes"] == 2

    def test_region_symbolization_falls_back_to_hex(self):
        from repro.mem.layout import RegionMap

        regions = RegionMap()
        regions.add("k.table", 0x200, 0x40)
        sink = ContentionSink(n_cores=1)
        sink.on_event(loss(1, 0, 0, 0x210, "thread_conflict",
                           attacker=(0, 0)))
        sink.on_event(loss(1, 0, 0, 0x900, "thread_conflict",
                           attacker=(0, 0)))
        summary = sink.summary(regions=regions)
        by_addr = {h["line_addr"]: h["region"] for h in summary.hot_lines}
        assert by_addr[0x210] == "k.table+0x10"
        assert by_addr[0x900] == "0x900"

    def test_retry_streaks_flush_on_success_and_at_summary(self):
        sink = ContentionSink(n_cores=1)
        # Three failures then success on one line: one streak of 3.
        for cycle in (1, 2, 3):
            sink.on_event(outcome(cycle, 0, 0, 0x100, ok=False,
                                  cause="thread_conflict"))
        sink.on_event(outcome(4, 0, 0, 0x100, ok=True))
        # One failure never resolved: flushed by summary().
        sink.on_event(outcome(5, 0, 0, 0x140, ok=False,
                              cause="thread_conflict"))
        summary = sink.summary()
        assert summary.retry_depths == {1: 1, 2: 1}

    def test_storm_flagging(self):
        sink = ContentionSink(n_cores=1, window=100, storm_threshold=4)
        for cycle in (10, 20, 150):
            sink.on_event(outcome(cycle, 0, 0, 0x100, ok=False, lanes=2,
                                  cause="alias"))
        summary = sink.summary()
        by_window = {t["window"]: t for t in summary.timeline}
        assert by_window[0]["failed_lanes"] == 4
        assert by_window[0]["storm"] is True
        assert by_window[1]["storm"] is False
        assert summary.storms == [0]

    def test_matrix_marginal_crosscheck_without_stats(self):
        sink = ContentionSink(n_cores=2)
        sink.on_event(loss(1, 0, 0, 0x100, "thread_conflict",
                           attacker=(1, 0)))
        sink.on_event(loss(2, 1, 1, 0x140, "eviction", attacker=(1, 0)))
        checks = sink.summary().crosscheck()
        assert checks == {"matrix_marginals": True}


SMOKE_SPECS = [
    RunSpec("tms", "tiny", "4x4", 4, "glsc"),
    RunSpec("hip", "tiny", "2x2", 4, "glsc"),
    RunSpec("gbc", "tiny", "2x2", 4, "glsc"),
    RunSpec("tms", "tiny", "2x2", 4, "base"),
]


class TestRealRuns:
    @pytest.mark.parametrize(
        "spec", SMOKE_SPECS, ids=lambda s: s.label().replace(" ", "_")
    )
    def test_crosschecks_hold_on_smoke_points(self, spec):
        summary, stats = observed_run(spec)
        checks = summary.crosscheck()
        assert checks and all(checks.values()), checks
        # Marginals re-derived here, independently of crosscheck():
        assert sum(summary.row_sums().values()) == summary.total_kills
        assert sum(summary.col_sums().values()) == summary.total_kills
        assert sum(summary.kills_by_cause.values()) == summary.total_kills
        assert summary.failed_lanes == {
            cause: count
            for cause, count in stats.glsc_element_failures.items()
            if count
        }

    def test_observation_does_not_change_cycles(self):
        spec = SMOKE_SPECS[0]
        _, observed = observed_run(spec)
        bare = execute_spec(spec)
        assert observed.cycles == bare.cycles
        assert observed.to_dict() == bare.to_dict()

    def test_report_is_deterministic_across_repeats(self):
        spec = SMOKE_SPECS[0]
        first, _ = observed_run(spec)
        second, _ = observed_run(spec)
        assert first.to_dict() == second.to_dict()
        assert first.render() == second.render()
        # and JSON round-trips stably
        assert (
            json.dumps(first.to_dict(), sort_keys=True)
            == json.dumps(second.to_dict(), sort_keys=True)
        )

    def test_hot_lines_symbolize_to_kernel_regions(self):
        summary, _ = observed_run(SMOKE_SPECS[0])
        assert summary.hot_lines
        for entry in summary.hot_lines:
            assert entry["region"].startswith("tms.")

    def test_scalar_consumed_matches_sc_counters(self):
        summary, stats = observed_run(SMOKE_SPECS[3])  # base variant
        assert stats.sc_count > 0
        assert (
            summary.consumed["scalar"]
            == stats.sc_count - stats.sc_failures
        )

    def test_compact_block_shape(self):
        summary, _ = observed_run(SMOKE_SPECS[0])
        block = summary.compact()
        assert set(block) == {
            "kills", "by_cause", "failed_lanes", "hot_line",
            "hot_line_total", "storms", "max_retry_depth",
        }
        assert block["kills"] == summary.total_kills
        assert block["hot_line"] == summary.hot_lines[0]["region"]

    def test_render_sections_present(self):
        summary, _ = observed_run(SMOKE_SPECS[0])
        text = summary.render()
        for section in (
            "# Contention report",
            "## Kill matrix",
            "## Hot lines",
            "## Timeline",
            "## Retry depth histogram",
        ):
            assert section in text
        assert "MISMATCH" not in text  # all cross-checks hold

    def test_storm_threshold_default_is_sane(self):
        # The default threshold should not flag the tiny smoke points.
        summary, _ = observed_run(SMOKE_SPECS[0])
        assert DEFAULT_STORM_THRESHOLD > 0
        for entry in summary.timeline:
            assert entry["storm"] == (
                entry["failed_lanes"] >= DEFAULT_STORM_THRESHOLD
            )
