"""Tests for the typed observability events."""

import dataclasses

import pytest

from repro.isa.instructions import Kind
from repro.obs.events import (
    CATEGORIES,
    EVENT_TYPES,
    CacheMiss,
    ElementOutcome,
    LineCombine,
    ReservationLost,
    all_event_types,
    event_to_dict,
)
from repro.sim.trace import TraceEvent


class TestEventTypes:
    def test_every_type_has_a_known_category(self):
        for event_type in all_event_types():
            assert event_type.category in CATEGORIES

    def test_all_event_types_includes_trace_event(self):
        assert TraceEvent in all_event_types()
        assert TraceEvent not in EVENT_TYPES  # static tuple stays lazy

    def test_events_are_frozen(self):
        event = CacheMiss(5, 0, 1, 0x100, "L1", "read")
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.cycle = 6

    def test_category_is_not_a_field(self):
        # category lives on the class so construction never pays for it
        names = {f.name for f in dataclasses.fields(CacheMiss)}
        assert "category" not in names


class TestEventToDict:
    def test_flat_dict_with_type_and_category(self):
        event = CacheMiss(5, 0, 1, 0x100, "L1", "read")
        data = event_to_dict(event)
        assert data == {
            "type": "CacheMiss",
            "cat": "cache",
            "cycle": 5,
            "core": 0,
            "slot": 1,
            "line_addr": 0x100,
            "level": "L1",
            "op": "read",
        }

    def test_enum_fields_serialize_by_name(self):
        event = TraceEvent(
            cycle=1, completion=4, thread=2, core=0,
            kind=Kind.VGATHERLINK, sync=True,
        )
        data = event_to_dict(event)
        assert data["kind"] == "VGATHERLINK"
        assert data["cat"] == "instr"

    def test_optional_cause_passes_through(self):
        ok = ElementOutcome(9, 0, 0, 0x40, "gatherlink", 3, True, None)
        bad = ElementOutcome(9, 0, 0, 0x40, "scattercond", 1, False, "alias")
        assert event_to_dict(ok)["cause"] is None
        assert event_to_dict(bad)["cause"] == "alias"

    def test_json_serializable(self):
        import json

        events = [
            ReservationLost(3, 1, 0, 0x80, "glsc", "eviction"),
            LineCombine(7, 0, 2, 0xC0, "gather", 3, True),
        ]
        text = json.dumps([event_to_dict(e) for e in events])
        assert "eviction" in text and "lanes_saved" in text
