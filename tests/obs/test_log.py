"""StructLogger: JSON/text rendering, binding, and legacy coercion."""

import io
import json

import pytest

from repro.obs.log import NULL_LOGGER, StructLogger, to_logger


def json_lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonFormat:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = StructLogger(stream=stream, component="worker")
        logger.info("done-task", digest="abc123", wall_s=0.5)
        logger.warning("fail", digest="def456")
        records = json_lines(stream)
        assert len(records) == 2
        assert records[0]["level"] == "info"
        assert records[0]["event"] == "done-task"
        assert records[0]["component"] == "worker"
        assert records[0]["digest"] == "abc123"
        assert records[0]["wall_s"] == 0.5
        assert records[1]["level"] == "warning"
        assert "ts" in records[0]

    def test_bound_fields_appear_on_every_record(self):
        stream = io.StringIO()
        logger = StructLogger(stream=stream).bind(worker_id="w0")
        logger.info("a")
        logger.debug("b", digest="x")
        records = json_lines(stream)
        assert all(r["worker_id"] == "w0" for r in records)
        assert records[1]["digest"] == "x"

    def test_bind_does_not_mutate_the_parent(self):
        stream = io.StringIO()
        parent = StructLogger(stream=stream)
        parent.bind(worker_id="w0")
        parent.info("a")
        assert "worker_id" not in json_lines(stream)[0]

    def test_call_site_fields_override_bound_ones(self):
        stream = io.StringIO()
        logger = StructLogger(stream=stream).bind(digest="old")
        logger.info("a", digest="new")
        assert json_lines(stream)[0]["digest"] == "new"


class TestTextFormat:
    def test_single_line_with_level_event_and_fields(self):
        stream = io.StringIO()
        logger = StructLogger(
            stream=stream, component="server", fmt="text"
        )
        logger.info("sweep", enqueued=3)
        line = stream.getvalue().strip()
        assert "info" in line
        assert "server" in line
        assert "sweep" in line
        assert "enqueued=3" in line
        assert "\n" not in line

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            StructLogger(fmt="xml")


class TestDisabledLogger:
    def test_null_logger_is_disabled_and_silent(self):
        assert not NULL_LOGGER.enabled
        NULL_LOGGER.info("ignored", digest="x")  # must not raise

    def test_bind_of_a_disabled_logger_stays_disabled(self):
        assert not NULL_LOGGER.bind(worker_id="w0").enabled


class TestToLogger:
    def test_none_becomes_the_null_logger(self):
        assert to_logger(None) is NULL_LOGGER

    def test_plain_callable_receives_text_lines(self):
        lines = []
        logger = to_logger(lines.append, component="worker")
        logger.info("done-task", digest="abc")
        assert len(lines) == 1
        assert "done-task" in lines[0]
        assert "digest=abc" in lines[0]
        assert logger.fmt == "text"

    def test_structlogger_passes_through(self):
        original = StructLogger(stream=io.StringIO(), component="cli")
        assert to_logger(original, component="worker") is original

    def test_componentless_structlogger_gains_the_component(self):
        stream = io.StringIO()
        logger = to_logger(StructLogger(stream=stream), component="worker")
        logger.info("a")
        assert json_lines(stream)[0]["component"] == "worker"
