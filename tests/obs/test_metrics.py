"""MetricsRegistry semantics: counting, labels, and both renderings."""

import threading

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_counts_and_totals_per_label(self):
        counter = Counter("tasks_total", labelnames=("op",))
        counter.inc(op="acked")
        counter.inc(2, op="acked")
        counter.inc(op="nacked")
        assert counter.value(op="acked") == 3
        assert counter.value(op="nacked") == 1
        assert counter.total() == 4

    def test_rejects_negative_increment(self):
        counter = Counter("n")
        with pytest.raises(ConfigError):
            counter.inc(-1)

    def test_rejects_wrong_labels(self):
        counter = Counter("n", labelnames=("op",))
        with pytest.raises(ConfigError):
            counter.inc(worker="w0")

    def test_unlabelled_counter_renders_a_zero_sample(self):
        lines = Counter("puts_total", help="h").render()
        assert "# TYPE puts_total counter" in lines
        assert "puts_total 0" in lines

    def test_thread_safety_under_contention(self):
        counter = Counter("n")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.total() == 4000


class TestGauge:
    def test_moves_both_ways_and_sets(self):
        gauge = Gauge("depth")
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 3
        gauge.set(10)
        assert gauge.value() == 10


class TestHistogram:
    def test_cumulative_buckets_sum_and_count(self):
        hist = Histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(6.05)
        lines = hist.render()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 3' in lines
        assert 'lat_bucket{le="+Inf"} 4' in lines
        assert "lat_count 4" in lines

    def test_labelled_samples_are_independent(self):
        hist = Histogram("lat", labelnames=("route",))
        hist.observe(0.2, route="/a")
        hist.observe(0.3, route="/b")
        assert hist.count(route="/a") == 1
        assert hist.count(route="/b") == 1

    def test_bucket_override_sorts_and_normalizes(self):
        hist = Histogram("rate", buckets=(1.0, 0.1, 0.5))
        assert hist.bounds == (0.1, 0.5, 1.0)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("rate", buckets=())


class TestRegistry:
    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("puts_total")
        second = registry.counter("puts_total")
        assert first is second

    def test_type_conflict_is_a_config_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigError):
            registry.gauge("x")

    def test_histogram_accepts_per_metric_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "contention_failure_rate", buckets=(0.01, 0.1, 1.0)
        )
        assert hist.bounds == (0.01, 0.1, 1.0)
        # Re-registering with the same layout gets the same metric,
        # even when spelled in a different order.
        again = registry.histogram(
            "contention_failure_rate", buckets=(1.0, 0.01, 0.1)
        )
        assert again is hist

    def test_histogram_bucket_conflict_is_a_config_error(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(0.1, 1.0))
        with pytest.raises(ConfigError):
            registry.histogram("lat", buckets=(0.2, 2.0))

    def test_default_bucket_reregistration_still_get_or_creates(self):
        registry = MetricsRegistry()
        first = registry.histogram("lat")
        assert registry.histogram("lat") is first

    def test_prometheus_rendering_covers_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("tasks_total", labelnames=("op",)).inc(op="acked")
        registry.gauge("depth").set(7)
        registry.histogram("lat").observe(0.02)
        text = registry.render_prometheus(extra_lines=["extra_series 1"])
        assert 'tasks_total{op="acked"} 1' in text
        assert "depth 7" in text
        assert "lat_count 1" in text
        assert text.rstrip().endswith("extra_series 1")

    def test_json_view_mirrors_the_samples(self):
        registry = MetricsRegistry()
        registry.counter("tasks_total", labelnames=("op",)).inc(op="acked")
        doc = registry.to_dict()
        assert doc["tasks_total"]["type"] == "counter"
        assert doc["tasks_total"]["samples"] == [
            {"labels": {"op": "acked"}, "value": 1.0}
        ]

    def test_process_default_is_swappable(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
