"""Guard: a run without observers never constructs an event.

The event-bus contract (see ``repro.obs.bus``) is that every emission
site tests ``obs is not None and obs.wants_<category>`` *before*
building the event object.  These tests enforce it by poisoning every
event constructor and running real simulations: if any hot path
allocates an event unconditionally, the poisoned constructor raises.
"""

import contextlib

import pytest

from repro.obs.bus import EventBus
from repro.obs.events import all_event_types
from repro.obs.sinks import MetricsSink
from repro.sim.config import named_config
from repro.sim.runner import run_kernel


class _Poisoned(RuntimeError):
    pass


@contextlib.contextmanager
def poisoned(event_types):
    """Make constructing any of ``event_types`` raise.

    Replaces each dataclass ``__init__`` (always present in the class
    dict, so it can be restored exactly; overriding ``__new__`` cannot
    be undone cleanly in CPython) with one that raises.
    """
    def boom(self, *args, **kwargs):
        raise _Poisoned(
            f"{type(self).__name__} constructed while disabled"
        )

    saved = {}
    for event_type in event_types:
        saved[event_type] = event_type.__init__
        event_type.__init__ = boom
    try:
        yield
    finally:
        for event_type, init in saved.items():
            event_type.__init__ = init


class TestDisabledPathAllocatesNothing:
    @pytest.mark.parametrize("variant", ["glsc", "base"])
    def test_unobserved_run_builds_no_events(self, variant):
        with poisoned(all_event_types()):
            result = run_kernel("hip", "tiny", named_config("1x2"), variant)
        assert result.cycles > 0

    def test_instr_only_bus_builds_no_memory_events(self):
        # A sink subscribed to `instr` alone must not make the memory
        # hierarchy allocate cache/coherence/reservation/glsc events.
        from repro.sim.trace import TraceEvent

        bus = EventBus()
        sink = bus.attach(MetricsSink(), categories=("instr",))
        with poisoned([t for t in all_event_types() if t is not TraceEvent]):
            result = run_kernel(
                "hip", "tiny", named_config("1x2"), "glsc", obs=bus
            )
        assert result.cycles > 0
        assert sink.thread_instructions  # instr events still flowed

    def test_unobserved_contended_run_builds_no_events(self):
        # A multi-core contended point exercises the attacker-threaded
        # ReservationLost emit sites (invalidations, back-invalidations,
        # write_conditional kills) — all must stay behind the guards.
        with poisoned(all_event_types()):
            result = run_kernel("tms", "tiny", named_config("4x4"), "glsc")
        assert result.cycles > 0

    def test_reservation_events_carry_attacker_identity(self):
        # Positive check on the new fields: with a reservation
        # subscriber, cross-thread kills must name a real attacker.
        from repro.obs.contention import ContentionSink

        bus = EventBus()
        sink = bus.attach(ContentionSink(n_cores=4))
        result = run_kernel(
            "tms", "tiny", named_config("4x4"), "glsc", obs=bus
        )
        bus.close()
        assert result.cycles > 0
        summary = sink.summary()
        assert summary.total_kills > 0
        attackers = set(summary.row_sums())
        assert attackers and all(tid >= 0 for tid in attackers)

    def test_poison_actually_bites_when_enabled(self):
        # Sanity check on the guard itself: with a cache subscriber the
        # same poisoned run must trip, proving the tests above pass
        # because nothing was built — not because poisoning is inert.
        from repro.obs.events import CacheHit, CacheMiss

        bus = EventBus()
        bus.attach(MetricsSink(), categories=("cache",))
        with poisoned((CacheHit, CacheMiss)):
            with pytest.raises(_Poisoned):
                run_kernel(
                    "hip", "tiny", named_config("1x2"), "glsc", obs=bus
                )


class TestServiceCategoryGuard:
    """The zero-allocation contract extends to queue TaskPhase events."""

    def lifecycle(self, tmp_path, obs):
        from repro.service.queue import WorkQueue
        from repro.sim.executor import RunSpec

        queue = WorkQueue(tmp_path / "q", lease_s=0.01, obs=obs)
        spec = RunSpec("tms", "tiny", "1x1", 4, "glsc")
        queue.submit(spec, trace_id="t1")
        task = queue.claim("w1")
        queue.nack(task)
        import json

        task = queue.claim("w1")
        lease = json.loads(task.lease_path.read_text())["lease"]
        queue.requeue_expired(now=lease["deadline"] + 1.0)
        return queue

    def test_unobserved_queue_builds_no_phase_events(self, tmp_path):
        from repro.obs.events import TaskPhase

        with poisoned((TaskPhase,)):
            queue = self.lifecycle(tmp_path, obs=None)
        assert queue.counts()["pending"] == 1

    def test_non_service_bus_builds_no_phase_events(self, tmp_path):
        from repro.obs.events import TaskPhase

        bus = EventBus()
        bus.attach(MetricsSink(), categories=("instr",))
        assert not bus.wants_service
        with poisoned((TaskPhase,)):
            queue = self.lifecycle(tmp_path, obs=bus)
        assert queue.counts()["pending"] == 1

    def test_poison_bites_with_a_service_subscriber(self, tmp_path):
        from repro.obs.events import TaskPhase
        from repro.obs.perfetto import SweepTraceExporter

        bus = EventBus()
        bus.attach(SweepTraceExporter())
        assert bus.wants_service
        with poisoned((TaskPhase,)):
            with pytest.raises(_Poisoned):
                self.lifecycle(tmp_path, obs=bus)

    def test_service_subscriber_sees_the_lifecycle(self, tmp_path):
        from repro.obs.perfetto import SweepTraceExporter

        bus = EventBus()
        exporter = bus.attach(SweepTraceExporter())
        self.lifecycle(tmp_path, obs=bus)
        bus.close()
        assert len(exporter) >= 4  # enqueued/claimed/nacked/requeued
