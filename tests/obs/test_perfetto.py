"""Tests for the Chrome trace-event exporter.

Includes the headline acceptance test: the ``glsc-fail:<cause>``
instants in the exported trace account for exactly the same lanes, by
the same causes, as ``MachineStats.glsc_element_failures``.
"""

import json
from collections import Counter

import pytest

from repro.obs.bus import EventBus
from repro.obs.events import (
    CacheHit,
    CacheMiss,
    ElementOutcome,
    ReservationLost,
    ReservationSet,
)
from repro.obs.perfetto import MEM_TRACK_BASE, PerfettoSink
from repro.sim.config import named_config
from repro.sim.runner import run_kernel


def run_traced(kernel, dataset, topology, variant, include_hits=False):
    bus = EventBus()
    sink = bus.attach(PerfettoSink(include_hits=include_hits))
    stats = run_kernel(kernel, dataset, named_config(topology), variant,
                       obs=bus)
    bus.close()
    return stats, sink


class TestDocumentShape:
    def test_top_level_schema(self):
        stats, sink = run_traced("hip", "tiny", "1x2", "glsc")
        doc = sink.to_dict()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["generator"] == "repro.obs.perfetto"
        assert isinstance(doc["traceEvents"], list)
        assert doc["traceEvents"]

    def test_phases_are_known_chrome_phases(self):
        stats, sink = run_traced("hip", "tiny", "1x2", "glsc")
        phases = {e["ph"] for e in sink.to_dict()["traceEvents"]}
        assert phases <= {"M", "X", "i", "b", "e"}
        assert "X" in phases  # instruction slices
        assert "M" in phases  # track metadata

    def test_instruction_slices_carry_kind_names(self):
        stats, sink = run_traced("hip", "tiny", "1x2", "glsc")
        names = {
            e["name"] for e in sink.to_dict()["traceEvents"]
            if e["ph"] == "X"
        }
        assert "VGATHERLINK" in names

    def test_memory_tracks_use_the_offset_tid(self):
        stats, sink = run_traced("hip", "tiny", "1x2", "glsc")
        mem_events = [
            e for e in sink.to_dict()["traceEvents"]
            if e.get("cat") == "memory"
        ]
        assert mem_events
        for e in mem_events:
            assert e["tid"] == MEM_TRACK_BASE + e["pid"]

    def test_write_produces_loadable_json(self, tmp_path):
        stats, sink = run_traced("hip", "tiny", "1x2", "glsc")
        path = tmp_path / "trace.json"
        sink.write(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_hits_excluded_unless_requested(self):
        sink = PerfettoSink()
        sink.on_event(CacheHit(1, 0, 0, 0x40, "L1", "read"))
        assert len(sink) == 0
        verbose = PerfettoSink(include_hits=True)
        verbose.on_event(CacheHit(1, 0, 0, 0x40, "L1", "read"))
        assert any(
            e["name"] == "L1-hit" for e in verbose.to_dict()["traceEvents"]
        )


class TestReservationSpans:
    def test_spans_balance_after_close(self):
        stats, sink = run_traced("tms", "tiny", "1x2", "glsc")
        events = sink.to_dict()["traceEvents"]
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert begins
        assert len(begins) == len(ends)
        assert Counter(e["id"] for e in begins) == Counter(
            e["id"] for e in ends
        )

    def test_relink_closes_the_previous_span(self):
        sink = PerfettoSink()
        sink.on_event(ReservationSet(10, 0, 1, 0x40, "glsc"))
        sink.on_event(ReservationSet(20, 0, 2, 0x40, "glsc"))
        sink.on_event(ReservationLost(30, 0, 2, 0x40, "glsc", "consumed"))
        events = sink.to_dict()["traceEvents"]
        ends = [e for e in events if e["ph"] == "e"]
        assert [e["args"]["cause"] for e in ends] == ["relink", "consumed"]

    def test_close_ends_dangling_spans_at_last_timestamp(self):
        sink = PerfettoSink()
        sink.on_event(ReservationSet(10, 0, 1, 0x40, "glsc"))
        sink.on_event(CacheMiss(55, 0, 0, 0x80, "L1", "read"))
        sink.close()
        ends = [e for e in sink.to_dict()["traceEvents"] if e["ph"] == "e"]
        assert len(ends) == 1
        assert ends[0]["ts"] == 55
        assert ends[0]["args"]["cause"] == "run_end"


class TestFailureAttribution:
    """ISSUE acceptance: trace failures == MachineStats failures, exactly."""

    @pytest.mark.parametrize(
        "kernel,dataset,topology",
        [("tms", "tiny", "1x2"), ("gps", "tiny", "2x2")],
    )
    def test_glsc_fail_instants_match_stats_exactly(
        self, kernel, dataset, topology
    ):
        result, sink = run_traced(kernel, dataset, topology, "glsc")
        by_cause = Counter()
        for e in sink.to_dict()["traceEvents"]:
            if e["name"].startswith("glsc-fail:"):
                by_cause[e["args"]["cause"]] += e["args"]["lanes"]
        expected = {
            cause: n
            for cause, n in result.stats.glsc_element_failures.items()
            if n
        }
        assert sum(expected.values()) > 0  # the run actually contended
        assert dict(by_cause) == expected

    def test_successful_elements_emit_no_instant(self):
        sink = PerfettoSink()
        sink.on_event(
            ElementOutcome(9, 0, 0, 0x40, "gatherlink", 3, True, None)
        )
        assert len(sink) == 0
