"""Tests for MetricsSink aggregation and JsonlSink capture."""

import io
import json

import pytest

from repro.obs.events import (
    CacheHit,
    CacheMiss,
    ElementOutcome,
    Eviction,
    Invalidation,
    LineCombine,
    ReservationLost,
    ReservationSet,
    Writeback,
)
from repro.obs.sinks import JsonlSink, MetricsSink


class TestMetricsSink:
    def test_bucket_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsSink(bucket=0)

    def test_hierarchy_counters(self):
        sink = MetricsSink()
        sink.on_event(CacheHit(1, 0, 0, 0x40, "L1", "read"))
        sink.on_event(CacheMiss(2, 0, 0, 0x80, "L1", "read"))
        sink.on_event(CacheMiss(2, 0, 0, 0x80, "L2", "read"))
        sink.on_event(Eviction(3, 0, 0x40, dirty=True))
        sink.on_event(Writeback(3, 0, 0x40, "eviction"))
        sink.on_event(Invalidation(4, 1, 0x80, "remote_write"))
        assert sink.hits["L1"] == 1
        assert sink.misses == {"L1": 1, "L2": 1}
        assert sink.evictions == 1
        assert sink.writebacks == {"eviction": 1}
        assert sink.invalidations == {"remote_write": 1}
        assert sink.events_seen == 6

    def test_element_outcomes_split_by_result(self):
        sink = MetricsSink()
        sink.on_event(ElementOutcome(5, 0, 0, 0x40, "gatherlink", 3,
                                     True, None))
        sink.on_event(ElementOutcome(6, 0, 0, 0x80, "scattercond", 2,
                                     False, "alias"))
        sink.on_event(ElementOutcome(7, 0, 1, 0x80, "scattercond", 1,
                                     False, "alias"))
        assert sink.element_successes == {"gatherlink": 3}
        assert sink.element_failures == {"alias": 3}

    def test_failure_timeline_buckets_by_cycle(self):
        sink = MetricsSink(bucket=100)
        sink.on_event(ElementOutcome(50, 0, 0, 0x40, "scattercond", 2,
                                     False, "eviction"))
        sink.on_event(ElementOutcome(99, 0, 0, 0x40, "scattercond", 1,
                                     False, "eviction"))
        sink.on_event(ElementOutcome(250, 0, 0, 0x40, "scattercond", 4,
                                     False, "eviction"))
        assert sink.failure_timeline["eviction"] == {0: 3, 2: 4}

    def test_link_lifetime_tracking(self):
        sink = MetricsSink()
        sink.on_event(ReservationSet(100, 0, 1, 0x40, "glsc"))
        sink.on_event(ReservationLost(160, 0, 1, 0x40, "glsc", "consumed"))
        assert sink.lifetime_count["consumed"] == 1
        assert sink.mean_lifetime("consumed") == pytest.approx(60.0)
        # 60 needs 6 bits
        assert sink.lifetime_hist["consumed"] == {6: 1}
        assert sink.mean_lifetime("never_seen") == 0.0

    def test_scalar_losses_do_not_enter_link_lifetimes(self):
        sink = MetricsSink()
        sink.on_event(ReservationLost(10, 0, 0, 0x40, "scalar",
                                      "thread_conflict"))
        assert sink.reservation_deaths["thread_conflict"] == 1
        assert not sink.lifetime_count

    def test_combining_counts_sync_lanes_only(self):
        sink = MetricsSink()
        sink.on_event(LineCombine(5, 0, 0, 0x40, "gather", 3, sync=True))
        sink.on_event(LineCombine(6, 0, 0, 0x40, "scatter", 2, sync=False))
        assert sink.lanes_saved_by_combining == 3

    def test_summary_and_render(self):
        sink = MetricsSink()
        sink.on_event(CacheMiss(2, 0, 0, 0x80, "L1", "read"))
        sink.on_event(ElementOutcome(6, 0, 0, 0x80, "scattercond", 2,
                                     False, "alias"))
        summary = sink.summary()
        assert summary["l1_misses"] == 1
        assert summary["element_failures"] == {"alias": 2}
        text = sink.render()
        assert "alias=2" in text
        assert "1 misses" in text


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.on_event(CacheMiss(2, 0, 1, 0x80, "L1", "read"))
        sink.on_event(Writeback(3, 0, 0x40, "eviction"))
        sink.close()
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["type"] == "CacheMiss"
        assert first["line_addr"] == 0x80

    def test_limit_bounds_the_file(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer, limit=1)
        with pytest.warns(RuntimeWarning, match="1-event bound"):
            for cycle in range(5):
                sink.on_event(CacheMiss(cycle, 0, 0, 0x40, "L1", "read"))
        assert sink.written == 1
        assert sink.dropped == 4
        assert len(buffer.getvalue().splitlines()) == 1

    def test_first_drop_warns_exactly_once(self):
        import warnings

        sink = JsonlSink(io.StringIO(), limit=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for cycle in range(6):
                sink.on_event(CacheMiss(cycle, 0, 0, 0x40, "L1", "read"))
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert sink.dropped == 4

    def test_summary_line_reports_written_and_dropped(self):
        sink = JsonlSink(io.StringIO(), limit=1)
        with pytest.warns(RuntimeWarning):
            for cycle in range(3):
                sink.on_event(CacheMiss(cycle, 0, 0, 0x40, "L1", "read"))
        assert sink.summary() == \
            "jsonl: 1 events written, 2 dropped (limit 1)"

    def test_summary_unbounded(self):
        sink = JsonlSink(io.StringIO())
        sink.on_event(Eviction(1, 0, 0x40, dirty=False))
        assert sink.summary() == \
            "jsonl: 1 events written, 0 dropped (unbounded)"

    def test_path_destination_owns_the_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        sink.on_event(Eviction(1, 0, 0x40, dirty=False))
        sink.close()
        data = [json.loads(line) for line in path.read_text().splitlines()]
        assert data[0]["type"] == "Eviction"
