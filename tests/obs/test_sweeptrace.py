"""Span sidecars, heartbeats, and the distributed sweep trace export."""

import json
import os

from repro.obs.perfetto import SweepTraceExporter
from repro.obs.sweeptrace import (
    PHASES,
    SpanLog,
    collect_spans,
    new_trace_id,
    read_heartbeats,
    write_heartbeat,
)

DIGEST = "a" * 64
OTHER = "b" * 64


class TestTraceIds:
    def test_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(32)}
        assert len(ids) == 32
        for tid in ids:
            assert len(tid) == 16
            int(tid, 16)


class TestSpanLog:
    def test_records_round_trip_through_collect(self, tmp_path):
        log = SpanLog(tmp_path, "worker-0")
        log.record("claimed", DIGEST, trace_id="t1")
        log.record("simulated", DIGEST, trace_id="t1", wall_s=0.5)
        spans = collect_spans(tmp_path)
        assert [s["phase"] for s in spans] == ["claimed", "simulated"]
        assert spans[0]["actor"] == "worker-0"
        assert spans[0]["digest"] == DIGEST
        assert spans[0]["trace_id"] == "t1"
        assert spans[1]["wall_s"] == 0.5
        assert spans[0]["pid"] == os.getpid()

    def test_actors_append_to_separate_files(self, tmp_path):
        SpanLog(tmp_path, "worker-0").record("claimed", DIGEST)
        SpanLog(tmp_path, "server").record("submitted", DIGEST)
        names = sorted(p.name for p in (tmp_path / "spans").iterdir())
        assert names == ["server.jsonl", "worker-0.jsonl"]

    def test_actor_names_are_sanitized_for_the_filesystem(self, tmp_path):
        SpanLog(tmp_path, "../evil worker").record("claimed", DIGEST)
        names = [p.name for p in (tmp_path / "spans").iterdir()]
        assert names == [".._evil_worker.jsonl"]

    def test_collect_filters_by_trace_id(self, tmp_path):
        log = SpanLog(tmp_path, "q")
        log.record("enqueued", DIGEST, trace_id="t1")
        log.record("enqueued", OTHER, trace_id="t2")
        spans = collect_spans(tmp_path, trace_id="t1")
        assert len(spans) == 1
        assert spans[0]["digest"] == DIGEST

    def test_collect_skips_torn_lines(self, tmp_path):
        log = SpanLog(tmp_path, "q")
        log.record("enqueued", DIGEST)
        with open(log.path, "a", encoding="utf-8") as fh:
            fh.write('{"phase": "clai')  # torn mid-append
        assert len(collect_spans(tmp_path)) == 1

    def test_collect_on_a_traceless_queue_is_empty(self, tmp_path):
        assert collect_spans(tmp_path) == []

    def test_canonical_phase_order_is_declared(self):
        assert PHASES == (
            "submitted", "enqueued", "claimed",
            "simulated", "saved", "streamed",
        )


class TestHeartbeats:
    def test_round_trip_with_age(self, tmp_path):
        write_heartbeat(tmp_path, "worker-0", {"claims": 3, "executed": 2})
        beats = read_heartbeats(tmp_path)
        assert len(beats) == 1
        beat = beats[0]
        assert beat["worker_id"] == "worker-0"
        assert beat["claims"] == 3
        assert beat["executed"] == 2
        assert beat["age_s"] < 60.0

    def test_rewrite_replaces_not_appends(self, tmp_path):
        write_heartbeat(tmp_path, "worker-0", {"claims": 1})
        write_heartbeat(tmp_path, "worker-0", {"claims": 5})
        beats = read_heartbeats(tmp_path)
        assert len(beats) == 1
        assert beats[0]["claims"] == 5

    def test_max_age_drops_stale_workers(self, tmp_path):
        write_heartbeat(tmp_path, "worker-0", {"claims": 1})
        stale = tmp_path / "workers" / "worker-1.json"
        stale.write_text(json.dumps(
            {"worker_id": "worker-1", "ts": 1.0, "claims": 9}
        ))
        alive = read_heartbeats(tmp_path, max_age_s=60.0)
        assert [b["worker_id"] for b in alive] == ["worker-0"]
        everyone = read_heartbeats(tmp_path)
        assert len(everyone) == 2

    def test_empty_queue_has_no_heartbeats(self, tmp_path):
        assert read_heartbeats(tmp_path) == []

    def test_torn_heartbeat_file_is_skipped(self, tmp_path):
        # A reader racing os.replace can observe a half-written file;
        # garbage JSON must not take the whole listing down.
        write_heartbeat(tmp_path, "worker-0", {"claims": 1})
        torn = tmp_path / "workers" / "worker-1.json"
        torn.write_text('{"worker_id": "worker-1", "cla')
        beats = read_heartbeats(tmp_path)
        assert [b["worker_id"] for b in beats] == ["worker-0"]

    def test_garbage_ts_is_skipped_not_raised(self, tmp_path):
        write_heartbeat(tmp_path, "worker-0", {"claims": 1})
        bad = tmp_path / "workers" / "worker-1.json"
        bad.write_text(json.dumps(
            {"worker_id": "worker-1", "ts": "not-a-number", "claims": 9}
        ))
        worse = tmp_path / "workers" / "worker-2.json"
        worse.write_text(json.dumps(
            {"worker_id": "worker-2", "ts": [1, 2], "claims": 9}
        ))
        beats = read_heartbeats(tmp_path)
        assert [b["worker_id"] for b in beats] == ["worker-0"]

    def test_non_dict_heartbeat_is_skipped(self, tmp_path):
        write_heartbeat(tmp_path, "worker-0", {"claims": 1})
        (tmp_path / "workers" / "worker-1.json").write_text("[1, 2, 3]")
        (tmp_path / "workers" / "worker-2.json").write_text(
            json.dumps({"claims": 9})  # no worker_id
        )
        beats = read_heartbeats(tmp_path)
        assert [b["worker_id"] for b in beats] == ["worker-0"]


def lifecycle_spans(trace_id, actor="worker-0", base=100.0):
    """One digest's full happy path as collected span records."""
    phases = ("submitted", "enqueued", "claimed", "simulated", "saved")
    return [
        {
            "ts": base + i, "phase": phase, "digest": DIGEST,
            "actor": "server" if phase == "submitted" else actor,
            "trace_id": trace_id,
        }
        for i, phase in enumerate(phases)
    ]


class TestSweepTraceExporter:
    def test_actors_become_process_tracks(self):
        exporter = SweepTraceExporter.from_spans(lifecycle_spans("t1"))
        doc = exporter.to_dict()
        names = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"sweep lifecycle", "server", "worker-0"}

    def test_lifecycle_span_brackets_first_and_last_phase(self):
        doc = SweepTraceExporter.from_spans(
            lifecycle_spans("t1")
        ).to_dict()
        begins = [e for e in doc["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "e"]
        assert len(begins) == len(ends) == 1
        assert begins[0]["ts"] == 0
        assert ends[0]["ts"] == 4_000_000  # 4 s after the first span
        assert begins[0]["args"]["trace_id"] == "t1"
        assert ends[0]["args"]["last_phase"] == "saved"

    def test_worker_gets_simulate_and_save_slices(self):
        doc = SweepTraceExporter.from_spans(
            lifecycle_spans("t1")
        ).to_dict()
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        labels = {e["name"].split(" ")[0] for e in slices}
        assert labels == {"simulate", "save"}
        simulate = next(
            e for e in slices if e["name"].startswith("simulate")
        )
        assert simulate["dur"] == 1_000_000  # claimed -> simulated, 1 s

    def test_malformed_records_are_dropped(self):
        exporter = SweepTraceExporter()
        exporter.add({"phase": "claimed"})  # no ts/digest
        exporter.add({"ts": 1.0, "digest": DIGEST, "phase": "claimed"})
        assert len(exporter) == 1

    def test_empty_exporter_still_writes_valid_json(self, tmp_path):
        out = tmp_path / "trace.json"
        SweepTraceExporter().write(str(out))
        doc = json.loads(out.read_text())
        assert doc["traceEvents"] == []
        assert doc["otherData"]["spans"] == 0

    def test_collected_spans_feed_the_exporter(self, tmp_path):
        trace_id = new_trace_id()
        queue_log = SpanLog(tmp_path, "queue")
        worker_log = SpanLog(tmp_path, "worker-0")
        queue_log.record("enqueued", DIGEST, trace_id=trace_id)
        worker_log.record("claimed", DIGEST, trace_id=trace_id)
        worker_log.record("simulated", DIGEST, trace_id=trace_id)
        exporter = SweepTraceExporter.from_spans(
            collect_spans(tmp_path, trace_id=trace_id)
        )
        assert len(exporter) == 3
        doc = exporter.to_dict()
        assert doc["otherData"]["spans"] == 3
