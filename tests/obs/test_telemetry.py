"""Tests for run-level telemetry records and provenance."""

from repro.obs.telemetry import (
    RunTelemetry,
    render_telemetry,
    run_provenance,
)


def sample(**overrides):
    base = dict(
        label="hip/A glsc 4x4",
        digest="abc123",
        source="simulated",
        cycles=120_000,
        instructions=40_000,
        wall_time_s=2.0,
        worker_pid=4242,
        created=1754_000_000.0,
    )
    base.update(overrides)
    return RunTelemetry(**base)


class TestRunTelemetry:
    def test_cycles_per_second(self):
        assert sample().cycles_per_second == 60_000.0

    def test_zero_wall_time_is_not_a_division_error(self):
        assert sample(wall_time_s=0.0).cycles_per_second == 0.0

    def test_round_trip(self):
        original = sample()
        rebuilt = RunTelemetry.from_dict(original.to_dict())
        assert rebuilt == original

    def test_to_dict_includes_derived_throughput(self):
        assert sample().to_dict()["cycles_per_second"] == 60_000.0

    def test_sim_khz_and_instr_per_sec(self):
        t = sample()
        assert t.sim_khz == 60.0
        assert t.instr_per_sec == 20_000.0
        out = t.to_dict()
        assert out["sim_khz"] == 60.0
        assert out["instr_per_sec"] == 20_000.0

    def test_sim_khz_zero_wall_time(self):
        t = sample(wall_time_s=0.0)
        assert t.sim_khz == 0.0
        assert t.instr_per_sec == 0.0

    def test_from_dict_ignores_unknown_keys(self):
        data = sample().to_dict()
        data["added_in_some_future_version"] = {"x": 1}
        rebuilt = RunTelemetry.from_dict(data)
        assert rebuilt.digest == "abc123"


class TestProvenance:
    def test_audit_fields_present(self):
        prov = run_provenance(1.5)
        assert prov["wall_time_s"] == 1.5
        for key in ("repro_version", "python", "platform",
                    "worker_pid", "created"):
            assert key in prov
        assert prov["worker_pid"] > 0


class TestRender:
    def test_table_and_totals(self):
        text = render_telemetry([
            sample(),
            sample(label="hip/A glsc 1x4", source="memo", wall_time_s=0.0),
        ])
        assert "hip/A glsc 4x4" in text
        assert "simulated" in text and "memo" in text
        assert "2 specs (1 simulated, 1 cached)" in text
        assert "120000 fresh cycles" in text  # memo'd cycles excluded

    def test_empty_sweep_renders_without_error(self):
        text = render_telemetry([])
        assert "0 specs" in text
