"""Batched queue files: submit_many publishing and worker batch drain.

One queue file per N specs cuts the per-spec filesystem round-trips,
and the claiming worker drains the whole file through one in-process
:class:`~repro.sim.batch.BatchRunner`.  The contract mirrors the
single-task path exactly: store records byte-identical (sans
provenance) to a serial run, per-member store-skip, whole-file nack on
failure, batch payloads surviving lease stamping and requeue.
"""

import json

from repro.obs.metrics import MetricsRegistry
from repro.service.queue import WorkQueue
from repro.service.worker import worker_loop
from repro.sim.executor import Executor, RunSpec
from repro.sim.store import ResultStore

SPECS = [
    RunSpec("tms", "tiny", "1x2", 4, "glsc"),
    RunSpec("tms", "tiny", "1x2", 4, "base"),
    RunSpec("hip", "tiny", "1x2", 4, "glsc"),
    RunSpec("hip", "tiny", "1x2", 1, "base"),
    RunSpec("tms", "tiny", "1x1", 4, "glsc"),
]


def canonical_records(store: ResultStore):
    out = {}
    for digest in store.digests():
        record = store.load_record(digest)
        assert record is not None
        record.pop("provenance", None)
        record.pop("created", None)
        out[digest] = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode()
    return out


class TestSubmitMany:
    def test_one_file_per_group(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", metrics=MetricsRegistry())
        queued = queue.submit_many(SPECS, batch_size=2)
        assert queued == len(SPECS)
        # 5 specs at batch_size=2 -> two batch files + one singleton.
        assert queue.counts(verify=True)["pending"] == 3

    def test_batch_size_histogram(self, tmp_path):
        metrics = MetricsRegistry()
        queue = WorkQueue(tmp_path / "q", metrics=metrics)
        queue.submit_many(SPECS, batch_size=2)
        hist = metrics.get("queue_batch_size")
        # Three files (2 + 2 + 1 specs): three observations summing to 5.
        assert hist.count() == 3
        assert hist.sum() == len(SPECS)

    def test_resubmit_in_flight_batch_is_noop(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", metrics=MetricsRegistry())
        assert queue.submit_many(SPECS, batch_size=4) == len(SPECS)
        assert queue.submit_many(SPECS, batch_size=4) == 0

    def test_claimed_batch_carries_members(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", metrics=MetricsRegistry())
        queue.submit_many(SPECS[:3], batch_size=3)
        task = queue.claim("w1")
        assert task is not None and task.is_batch
        assert [spec for _, spec in task.members] == SPECS[:3]
        assert task.digest.startswith("batch-")

    def test_batch_payload_survives_lease_and_requeue(self, tmp_path):
        queue = WorkQueue(
            tmp_path / "q", lease_s=0.01, metrics=MetricsRegistry()
        )
        queue.submit_many(SPECS[:3], batch_size=3)
        first = queue.claim("w1")
        assert first is not None
        # The lease stamp rewrites the file; expiry renames it back to
        # pending, and the next claim must still see every member.
        requeued = queue.requeue_expired(now=9e18)
        assert requeued == [first.digest]
        second = queue.claim("w2")
        assert second is not None and second.is_batch
        assert second.members == first.members


class TestWorkerBatchDrain:
    def test_batch_drain_byte_identical_to_serial(self, tmp_path):
        serial_store = ResultStore(tmp_path / "serial")
        Executor(store=serial_store).run_sweep(SPECS)

        queue = WorkQueue(tmp_path / "q", metrics=MetricsRegistry())
        store = ResultStore(tmp_path / "batch")
        queue.submit_many(SPECS, batch_size=2)
        summary = worker_loop(
            queue, store, worker_id="w-batch", exit_when_empty=True
        )
        assert summary.executed == len(SPECS)
        assert queue.is_empty()
        serial_records = canonical_records(serial_store)
        batch_records = canonical_records(store)
        assert batch_records == serial_records
        # Batched members carry their file's id in provenance; the
        # trailing singleton (5 specs at batch_size=2) does not.
        with_batch_id = sum(
            1 for d in store.digests()
            if (store.load_record(d).get("provenance") or {}).get("batch_id")
        )
        assert with_batch_id == 4

    def test_member_store_skip(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", metrics=MetricsRegistry())
        store = ResultStore(tmp_path / "store")
        # Pre-seed two of three members; only the third simulates.
        Executor(store=store).run_sweep(SPECS[:2])
        queue.submit_many(SPECS[:3], batch_size=3)
        summary = worker_loop(
            queue, store, worker_id="w-skip", exit_when_empty=True
        )
        assert summary.executed == 1
        assert summary.skipped == 2
        assert queue.is_empty()

    def test_fully_stored_batch_is_acked_without_simulating(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", metrics=MetricsRegistry())
        store = ResultStore(tmp_path / "store")
        Executor(store=store).run_sweep(SPECS[:2])
        queue.submit_many(SPECS[:2], batch_size=2)
        summary = worker_loop(
            queue, store, worker_id="w-ack", exit_when_empty=True
        )
        assert summary.executed == 0
        assert summary.skipped == 2
        assert queue.is_empty()

    def test_failed_batch_nacks_whole_file(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", metrics=MetricsRegistry())
        store = ResultStore(tmp_path / "store")
        poison = [SPECS[0], RunSpec("no-such-kernel", "tiny", "1x2", 4, "glsc")]
        queue.submit_many(poison, batch_size=2)
        summary = worker_loop(
            queue, store, worker_id="w-fail", exit_when_empty=True
        )
        assert summary.failed == 1
        assert summary.executed == 0
        # The whole file went back to pending (this worker excludes its
        # own poisoned digests, so it drains as "empty" around it).
        assert queue.counts(verify=True)["pending"] == 1

    def test_executor_queue_backend_uses_batch_files(self, tmp_path):
        """End-to-end: executor submits batches, a worker drains them."""
        import threading

        queue_dir = tmp_path / "q"
        store = ResultStore(tmp_path / "store")
        metrics = MetricsRegistry()
        worker_queue = WorkQueue(queue_dir, metrics=metrics)
        drained = threading.Thread(
            target=worker_loop,
            args=(worker_queue, store),
            kwargs={"worker_id": "w-e2e", "idle_exit_s": 2.0},
        )
        drained.start()
        try:
            executor = Executor(
                store=store, backend=f"queue://{queue_dir}", batch_size=3
            )
            results = executor.run_sweep(SPECS)
        finally:
            drained.join(timeout=60)
        assert not drained.is_alive()
        assert executor.counters.queued == len(SPECS)
        solo = Executor().run_sweep(SPECS)
        for spec in SPECS:
            assert results[spec].to_dict() == solo[spec].to_dict()
