"""Work-queue semantics: claims are exclusive, leases expire, acks
are idempotent.  All filesystem-level — no server or worker involved.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.service.queue import WorkQueue, parse_queue_url
from repro.sim.executor import RunSpec, Sweep

SPEC = RunSpec("tms", "tiny", "1x1", 4, "glsc")
OTHER = RunSpec("hip", "tiny", "1x1", 4, "glsc")


class TestUrlParsing:
    def test_queue_url_roundtrip(self, tmp_path):
        assert parse_queue_url(f"queue://{tmp_path}/q") == tmp_path / "q"

    def test_rejects_other_schemes(self):
        with pytest.raises(ConfigError):
            parse_queue_url("redis://localhost/0")

    def test_rejects_empty_path(self):
        with pytest.raises(ConfigError):
            parse_queue_url("queue://")


class TestSubmit:
    def test_submit_creates_pending_task(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert queue.submit(SPEC) is True
        assert queue.counts() == {"pending": 1, "leased": 0}

    def test_submit_dedups_in_flight_digests(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert queue.submit(SPEC) is True
        assert queue.submit(SPEC) is False          # already pending
        task = queue.claim("w1")
        assert queue.submit(SPEC) is False          # leased counts too
        queue.ack(task)
        assert queue.submit(SPEC) is True           # done -> resubmittable

    def test_submit_sweep(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        sweep = Sweep([SPEC, OTHER, SPEC])          # duplicate collapses
        assert queue.submit_sweep(sweep) == 2
        assert queue.counts()["pending"] == 2


class TestClaim:
    def test_claim_is_exclusive(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        first = queue.claim("w1")
        assert first is not None and first.digest == SPEC.digest()
        assert queue.claim("w2") is None            # nothing left
        assert queue.counts() == {"pending": 0, "leased": 1}

    def test_claimed_spec_roundtrips(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        task = queue.claim("w1")
        assert task.spec == SPEC

    def test_lease_stamp_names_the_worker(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        task = queue.claim("worker-seven")
        lease = json.loads(task.lease_path.read_text())["lease"]
        assert lease["worker_id"] == "worker-seven"
        assert lease["deadline"] > lease["claimed"]

    def test_poison_payloads_are_dropped_not_looped(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.pending_dir.mkdir(parents=True)
        (queue.pending_dir / "deadbeef.json").write_text("{not json")
        queue.submit(SPEC)
        task = queue.claim("w1")
        assert task is not None and task.digest == SPEC.digest()
        assert queue.claim("w1") is None            # poison gone, not requeued


class TestAckNack:
    def test_ack_removes_the_lease(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        task = queue.claim("w1")
        queue.ack(task)
        assert queue.is_empty()

    def test_ack_tolerates_missing_lease(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        task = queue.claim("w1")
        task.lease_path.unlink()                    # someone raced us
        queue.ack(task)                             # must not raise

    def test_nack_returns_task_to_pending(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        task = queue.claim("w1")
        queue.nack(task)
        assert queue.counts() == {"pending": 1, "leased": 0}
        again = queue.claim("w2")
        assert again.digest == SPEC.digest()


class TestLeaseExpiry:
    def test_expired_lease_is_requeued_and_reclaimable(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_s=0.01)
        queue.submit(SPEC)
        task = queue.claim("crashed-worker")
        assert queue.counts()["leased"] == 1

        lease = json.loads(task.lease_path.read_text())["lease"]
        requeued = queue.requeue_expired(now=lease["deadline"] + 1.0)
        assert requeued == [SPEC.digest()]
        assert queue.counts() == {"pending": 1, "leased": 0}

        replacement = queue.claim("healthy-worker")
        assert replacement is not None
        assert replacement.spec == SPEC

    def test_live_lease_is_left_alone(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_s=3600.0)
        queue.submit(SPEC)
        queue.claim("w1")
        assert queue.requeue_expired() == []
        assert queue.counts()["leased"] == 1

    def test_stale_ack_after_requeue_cannot_kill_the_new_lease(
        self, tmp_path
    ):
        queue = WorkQueue(tmp_path / "q", lease_s=0.01)
        queue.submit(SPEC)
        stale = queue.claim("straggler")
        lease = json.loads(stale.lease_path.read_text())["lease"]
        queue.requeue_expired(now=lease["deadline"] + 1.0)
        fresh = queue.claim("replacement")
        # The straggler finally acks its long-gone lease: the nonce in
        # the lease filename means this cannot unlink the fresh one.
        queue.ack(stale)
        assert fresh.lease_path.exists()
        assert queue.counts()["leased"] == 1
