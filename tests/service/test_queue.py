"""Work-queue semantics: claims are exclusive, leases expire, acks
are idempotent.  All filesystem-level — no server or worker involved.
"""

import io
import json

import pytest

from repro.errors import ConfigError
from repro.obs.log import StructLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.sweeptrace import collect_spans
from repro.service.queue import WorkQueue, parse_queue_url
from repro.sim.executor import RunSpec, Sweep

SPEC = RunSpec("tms", "tiny", "1x1", 4, "glsc")
OTHER = RunSpec("hip", "tiny", "1x1", 4, "glsc")


class TestUrlParsing:
    def test_queue_url_roundtrip(self, tmp_path):
        assert parse_queue_url(f"queue://{tmp_path}/q") == tmp_path / "q"

    def test_rejects_other_schemes(self):
        with pytest.raises(ConfigError):
            parse_queue_url("redis://localhost/0")

    def test_rejects_empty_path(self):
        with pytest.raises(ConfigError):
            parse_queue_url("queue://")


class TestSubmit:
    def test_submit_creates_pending_task(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert queue.submit(SPEC) is True
        assert queue.counts() == {"pending": 1, "leased": 0}

    def test_submit_dedups_in_flight_digests(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert queue.submit(SPEC) is True
        assert queue.submit(SPEC) is False          # already pending
        task = queue.claim("w1")
        assert queue.submit(SPEC) is False          # leased counts too
        queue.ack(task)
        assert queue.submit(SPEC) is True           # done -> resubmittable

    def test_submit_sweep(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        sweep = Sweep([SPEC, OTHER, SPEC])          # duplicate collapses
        assert queue.submit_sweep(sweep) == 2
        assert queue.counts()["pending"] == 2


class TestClaim:
    def test_claim_is_exclusive(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        first = queue.claim("w1")
        assert first is not None and first.digest == SPEC.digest()
        assert queue.claim("w2") is None            # nothing left
        assert queue.counts() == {"pending": 0, "leased": 1}

    def test_claimed_spec_roundtrips(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        task = queue.claim("w1")
        assert task.spec == SPEC

    def test_lease_stamp_names_the_worker(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        task = queue.claim("worker-seven")
        lease = json.loads(task.lease_path.read_text())["lease"]
        assert lease["worker_id"] == "worker-seven"
        assert lease["deadline"] > lease["claimed"]

    def test_poison_payloads_are_dropped_not_looped(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.pending_dir.mkdir(parents=True)
        (queue.pending_dir / "deadbeef.json").write_text("{not json")
        queue.submit(SPEC)
        task = queue.claim("w1")
        assert task is not None and task.digest == SPEC.digest()
        assert queue.claim("w1") is None            # poison gone, not requeued


class TestAckNack:
    def test_ack_removes_the_lease(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        task = queue.claim("w1")
        queue.ack(task)
        assert queue.is_empty()

    def test_ack_tolerates_missing_lease(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        task = queue.claim("w1")
        task.lease_path.unlink()                    # someone raced us
        queue.ack(task)                             # must not raise

    def test_nack_returns_task_to_pending(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        task = queue.claim("w1")
        queue.nack(task)
        assert queue.counts() == {"pending": 1, "leased": 0}
        again = queue.claim("w2")
        assert again.digest == SPEC.digest()


class TestLeaseExpiry:
    def test_expired_lease_is_requeued_and_reclaimable(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_s=0.01)
        queue.submit(SPEC)
        task = queue.claim("crashed-worker")
        assert queue.counts()["leased"] == 1

        lease = json.loads(task.lease_path.read_text())["lease"]
        requeued = queue.requeue_expired(now=lease["deadline"] + 1.0)
        assert requeued == [SPEC.digest()]
        assert queue.counts() == {"pending": 1, "leased": 0}

        replacement = queue.claim("healthy-worker")
        assert replacement is not None
        assert replacement.spec == SPEC

    def test_live_lease_is_left_alone(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_s=3600.0)
        queue.submit(SPEC)
        queue.claim("w1")
        assert queue.requeue_expired() == []
        assert queue.counts()["leased"] == 1

    def test_stale_ack_after_requeue_cannot_kill_the_new_lease(
        self, tmp_path
    ):
        queue = WorkQueue(tmp_path / "q", lease_s=0.01)
        queue.submit(SPEC)
        stale = queue.claim("straggler")
        lease = json.loads(stale.lease_path.read_text())["lease"]
        queue.requeue_expired(now=lease["deadline"] + 1.0)
        fresh = queue.claim("replacement")
        # The straggler finally acks its long-gone lease: the nonce in
        # the lease filename means this cannot unlink the fresh one.
        queue.ack(stale)
        assert fresh.lease_path.exists()
        assert queue.counts()["leased"] == 1


def telemetry_queue(tmp_path, **kwargs):
    """A queue wired to a fresh registry and a JSON log buffer."""
    registry = MetricsRegistry()
    stream = io.StringIO()
    queue = WorkQueue(
        tmp_path / "q",
        metrics=registry,
        logger=StructLogger(stream=stream, component="queue"),
        **kwargs,
    )
    return queue, registry, stream


def log_records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestQueueMetrics:
    def test_lifecycle_ops_are_counted(self, tmp_path):
        queue, registry, _ = telemetry_queue(tmp_path)
        queue.submit(SPEC)
        queue.submit(OTHER)
        task = queue.claim("w1")
        queue.ack(task)
        other = queue.claim("w1")
        queue.nack(other)
        ops = registry.get("queue_tasks_total")
        assert ops.value(op="submitted") == 2
        assert ops.value(op="claimed") == 2
        assert ops.value(op="acked") == 1
        assert ops.value(op="nacked") == 1

    def test_depth_gauges_track_every_transition(self, tmp_path):
        queue, registry, _ = telemetry_queue(tmp_path)
        label = str(queue.root)
        pending = registry.get("queue_pending_depth")
        leased = registry.get("queue_leased_depth")
        queue.counts()                              # prime the tracker
        queue.submit(SPEC)
        assert (pending.value(queue=label), leased.value(queue=label)) \
            == (1, 0)
        task = queue.claim("w1")
        assert (pending.value(queue=label), leased.value(queue=label)) \
            == (0, 1)
        queue.ack(task)
        assert (pending.value(queue=label), leased.value(queue=label)) \
            == (0, 0)

    def test_requeue_on_timeout_counts_and_logs(self, tmp_path):
        queue, registry, stream = telemetry_queue(tmp_path, lease_s=0.01)
        queue.counts()                              # prime the tracker
        queue.submit(SPEC)
        task = queue.claim("crashed-worker")
        lease = json.loads(task.lease_path.read_text())["lease"]
        queue.requeue_expired(now=lease["deadline"] + 1.0)

        assert registry.get("queue_tasks_total").value(op="requeued") == 1
        assert registry.get("queue_pending_depth").value(
            queue=str(queue.root)
        ) == 1
        events = [r for r in log_records(stream)
                  if r["event"] == "requeue-expired"]
        assert len(events) == 1
        assert events[0]["level"] == "info"
        assert events[0]["digest"] == SPEC.digest()[:12]

    def test_poison_drop_counts_and_warns(self, tmp_path):
        queue, registry, stream = telemetry_queue(tmp_path)
        queue.pending_dir.mkdir(parents=True)
        (queue.pending_dir / "deadbeef.json").write_text("{not json")
        queue.submit(SPEC)
        assert queue.claim("w1") is not None        # the real task
        assert queue.claim("w1") is None            # hits + drops poison

        assert registry.get("queue_tasks_total").value(op="poisoned") == 1
        warnings = [r for r in log_records(stream)
                    if r["event"] == "poison-drop"]
        assert len(warnings) == 1
        assert warnings[0]["level"] == "warning"

    def test_stale_ack_does_not_underflow_the_leased_depth(self, tmp_path):
        queue, registry, _ = telemetry_queue(tmp_path)
        queue.submit(SPEC)
        task = queue.claim("w1")
        task.lease_path.unlink()                    # someone raced us
        queue.ack(task)                             # stale ack, no effect
        assert registry.get("queue_tasks_total").value(op="acked") == 0
        assert queue.verify_counts()["match"] is True


class TestTrackedCounts:
    def test_counts_avoid_rescans_within_the_ttl(self, tmp_path):
        queue, _, _ = telemetry_queue(tmp_path, counts_ttl_s=3600.0)
        queue.submit(SPEC)
        queue.counts()                              # prime the tracker
        # Tamper behind the queue's back: tracked counts cannot see it
        # until the TTL expires or someone asks for verification.
        (queue.pending_dir / f"{OTHER.digest()}.json").write_text(
            json.dumps({"spec": OTHER.to_dict()})
        )
        assert queue.counts()["pending"] == 1       # stale by design
        assert queue.counts(verify=True)["pending"] == 2

    def test_verify_counts_reports_and_heals_drift(self, tmp_path):
        queue, _, _ = telemetry_queue(tmp_path, counts_ttl_s=3600.0)
        queue.submit(SPEC)
        queue.counts()
        (queue.pending_dir / f"{OTHER.digest()}.json").write_text(
            json.dumps({"spec": OTHER.to_dict()})
        )
        report = queue.verify_counts()
        assert report["match"] is False
        assert report["tracked"]["pending"] == 1
        assert report["scan"]["pending"] == 2
        # Drift resyncs to the scan; a second check passes.
        assert queue.counts()["pending"] == 2
        assert queue.verify_counts()["match"] is True


class TestQueueTracing:
    def test_traced_submit_records_an_enqueued_span(self, tmp_path):
        queue, _, _ = telemetry_queue(tmp_path)
        queue.submit(SPEC, trace_id="t1")
        spans = collect_spans(queue.root, trace_id="t1")
        assert [s["phase"] for s in spans] == ["enqueued"]
        assert spans[0]["digest"] == SPEC.digest()

    def test_trace_id_rides_the_payload_to_the_claimer(self, tmp_path):
        queue, _, _ = telemetry_queue(tmp_path)
        queue.submit(SPEC, trace_id="t1")
        task = queue.claim("w1")
        assert task.trace_id == "t1"

    def test_trace_id_survives_lease_expiry(self, tmp_path):
        queue, _, _ = telemetry_queue(tmp_path, lease_s=0.01)
        queue.submit(SPEC, trace_id="t1")
        task = queue.claim("crashed-worker")
        lease = json.loads(task.lease_path.read_text())["lease"]
        queue.requeue_expired(now=lease["deadline"] + 1.0)
        again = queue.claim("healthy-worker")
        assert again.trace_id == "t1"
        phases = [
            s["phase"] for s in collect_spans(queue.root, trace_id="t1")
        ]
        assert "requeued" in phases

    def test_untraced_submit_writes_no_spans(self, tmp_path):
        queue, _, _ = telemetry_queue(tmp_path)
        queue.submit(SPEC)
        queue.ack(queue.claim("w1"))
        assert collect_spans(queue.root) == []
