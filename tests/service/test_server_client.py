"""Server + client round trip: HTTP answers must match local runs.

One ``SweepServer`` runs on a background thread (port 0 -> ephemeral)
over a real store and queue; a ``SweepClient`` talks to it exactly as
a remote user would.  The contract under test: a warm digest query is
answered from the store without simulating anything, misses are
enqueued for workers, and ``run_sweep`` reconstructs ``MachineStats``
equal to a local ``Executor.run_sweep``.
"""

import asyncio
import threading

import pytest

from repro.errors import ConfigError
from repro.service.client import ServiceError, SweepClient
from repro.service.queue import WorkQueue
from repro.service.server import SweepServer
from repro.service.worker import worker_loop
from repro.sim.executor import Executor, RunSpec, Sweep
from repro.sim.store import ResultStore

SPEC = RunSpec("tms", "tiny", "1x1", 4, "glsc")
SWEEP = Sweep.product(("tms", "hip"), ("tiny",), ("1x1",), (4,),
                      ("base", "glsc"))


@pytest.fixture()
def service(tmp_path):
    """A live server thread; yields (server, client, store, queue)."""
    store = ResultStore(tmp_path / "store")
    queue = WorkQueue(tmp_path / "queue", lease_s=30.0)
    server = SweepServer(store, queue, port=0)
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve_forever()), daemon=True
    )
    thread.start()
    assert server.started.wait(timeout=10), "server never bound"
    client = SweepClient(f"http://127.0.0.1:{server.port}", timeout_s=10)
    yield server, client, store, queue
    server.stop()
    thread.join(timeout=10)


class TestQueries:
    def test_health(self, service):
        _, client, _, _ = service
        health = client.health()
        assert health["ok"] is True
        assert health["queue"]["pending"] == 0

    def test_warm_digest_answered_from_store_without_simulating(
        self, service
    ):
        server, client, store, queue = service
        Executor(store=store).run(SPEC)

        record = client.record(SPEC.digest())
        assert record is not None
        assert record["stats"] == store.load(SPEC.digest()).to_dict()
        assert client.result(SPEC.digest()) == store.load(SPEC.digest())
        # Nothing was enqueued: the store answered.
        assert queue.is_empty()

    def test_cold_digest_404s_and_reports_queue_state(self, service):
        _, client, _, queue = service
        missing = "0" * 64
        assert client.record(missing) is None
        queue.submit(SPEC)
        status, decoded = client._request_json(
            "GET", f"/v1/result/{SPEC.digest()}", allow=(404,)
        )
        assert decoded["queued"] is True

    def test_unknown_endpoint_is_a_json_404(self, service):
        _, client, _, _ = service
        with pytest.raises(ServiceError):
            client._request_json("GET", "/nope")


class TestSubmit:
    def test_submit_splits_hits_from_misses(self, service):
        _, client, store, queue = service
        Executor(store=store).run(SPEC)

        handle = client.submit(SWEEP)
        assert len(handle.digests) == len(SWEEP)
        assert handle.digest_of[SPEC] == SPEC.digest()
        assert handle.hits == 1
        assert handle.enqueued == len(SWEEP) - 1
        assert queue.counts()["pending"] == len(SWEEP) - 1

    def test_resubmit_enqueues_nothing_new(self, service):
        _, client, _, queue = service
        client.submit(SWEEP)
        pending = queue.counts()["pending"]
        again = client.submit(SWEEP)
        assert again.enqueued == 0
        assert again.pending == len(SWEEP)
        assert queue.counts()["pending"] == pending

    def test_status_tracks_the_store(self, service):
        _, client, store, _ = service
        handle = client.submit(SWEEP)
        assert client.status(handle)["done"] == 0
        Executor(store=store).run(SPEC)
        status = client.status(handle)
        assert status["done"] == 1
        assert SPEC.digest() not in status["pending"]


class TestRoundTrip:
    def test_run_sweep_matches_local_executor(self, service, tmp_path):
        _, client, store, queue = service
        local = Executor(store=ResultStore(tmp_path / "local"))
        expected = local.run_sweep(SWEEP)

        handle = client.submit(SWEEP)
        assert handle.enqueued == len(SWEEP)
        worker_loop(queue, store, worker_id="w", exit_when_empty=True)

        remote = client.run_sweep(SWEEP, poll_s=0.05, timeout_s=30)
        assert set(remote) == set(expected)
        for spec in expected:
            assert remote[spec] == expected[spec], spec.label()

    def test_streamed_records_arrive_in_batches(self, service):
        server, client, store, queue = service
        server.batch = 2          # force several flushes
        digests = []
        for width in (1, 4):
            spec = RunSpec("tms", "tiny", "1x1", width, "glsc")
            Executor(store=store).run(spec)
            digests.append(spec.digest())
        records = list(client.stream_records(digests + ["f" * 64]))
        assert [r["digest"] for r in records] == digests

    def test_run_sweep_times_out_without_workers(self, service):
        _, client, _, _ = service
        with pytest.raises(ServiceError, match="workers"):
            client.run_sweep(
                Sweep([SPEC]), poll_s=0.05, timeout_s=0.3
            )


class TestClientUrls:
    def test_rejects_https(self):
        with pytest.raises(ConfigError):
            SweepClient("https://example.com")

    def test_bare_host_port(self):
        client = SweepClient("127.0.0.1:9999")
        assert (client.host, client.port) == ("127.0.0.1", 9999)
