"""Server + client round trip: HTTP answers must match local runs.

One ``SweepServer`` runs on a background thread (port 0 -> ephemeral)
over a real store and queue; a ``SweepClient`` talks to it exactly as
a remote user would.  The contract under test: a warm digest query is
answered from the store without simulating anything, misses are
enqueued for workers, and ``run_sweep`` reconstructs ``MachineStats``
equal to a local ``Executor.run_sweep``.
"""

import asyncio
import threading

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.sweeptrace import collect_spans
from repro.service.client import ServiceError, SweepClient
from repro.service.queue import WorkQueue
from repro.service.server import SweepServer
from repro.service.worker import worker_loop
from repro.sim.executor import Executor, RunSpec, Sweep
from repro.sim.store import ResultStore

SPEC = RunSpec("tms", "tiny", "1x1", 4, "glsc")
SWEEP = Sweep.product(("tms", "hip"), ("tiny",), ("1x1",), (4,),
                      ("base", "glsc"))


@pytest.fixture()
def service(tmp_path):
    """A live server thread; yields (server, client, store, queue).

    Store, queue, and server share one *fresh* registry (the server
    defaults to the queue's), so metric assertions are isolated from
    other tests' traffic on the process-global registry.
    """
    registry = MetricsRegistry()
    store = ResultStore(tmp_path / "store", metrics=registry)
    queue = WorkQueue(tmp_path / "queue", lease_s=30.0, metrics=registry)
    server = SweepServer(store, queue, port=0)
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve_forever()), daemon=True
    )
    thread.start()
    assert server.started.wait(timeout=10), "server never bound"
    client = SweepClient(f"http://127.0.0.1:{server.port}", timeout_s=10)
    yield server, client, store, queue
    server.stop()
    thread.join(timeout=10)


class TestQueries:
    def test_health(self, service):
        _, client, _, _ = service
        health = client.health()
        assert health["ok"] is True
        assert health["queue"]["pending"] == 0

    def test_warm_digest_answered_from_store_without_simulating(
        self, service
    ):
        server, client, store, queue = service
        Executor(store=store).run(SPEC)

        record = client.record(SPEC.digest())
        assert record is not None
        assert record["stats"] == store.load(SPEC.digest()).to_dict()
        assert client.result(SPEC.digest()) == store.load(SPEC.digest())
        # Nothing was enqueued: the store answered.
        assert queue.is_empty()

    def test_cold_digest_404s_and_reports_queue_state(self, service):
        _, client, _, queue = service
        missing = "0" * 64
        assert client.record(missing) is None
        queue.submit(SPEC)
        status, decoded = client._request_json(
            "GET", f"/v1/result/{SPEC.digest()}", allow=(404,)
        )
        assert decoded["queued"] is True

    def test_unknown_endpoint_is_a_json_404(self, service):
        _, client, _, _ = service
        with pytest.raises(ServiceError):
            client._request_json("GET", "/nope")


class TestSubmit:
    def test_submit_splits_hits_from_misses(self, service):
        _, client, store, queue = service
        Executor(store=store).run(SPEC)

        handle = client.submit(SWEEP)
        assert len(handle.digests) == len(SWEEP)
        assert handle.digest_of[SPEC] == SPEC.digest()
        assert handle.hits == 1
        assert handle.enqueued == len(SWEEP) - 1
        assert queue.counts()["pending"] == len(SWEEP) - 1

    def test_resubmit_enqueues_nothing_new(self, service):
        _, client, _, queue = service
        client.submit(SWEEP)
        pending = queue.counts()["pending"]
        again = client.submit(SWEEP)
        assert again.enqueued == 0
        assert again.pending == len(SWEEP)
        assert queue.counts()["pending"] == pending

    def test_status_tracks_the_store(self, service):
        _, client, store, _ = service
        handle = client.submit(SWEEP)
        assert client.status(handle)["done"] == 0
        Executor(store=store).run(SPEC)
        status = client.status(handle)
        assert status["done"] == 1
        assert SPEC.digest() not in status["pending"]


class TestRoundTrip:
    def test_run_sweep_matches_local_executor(self, service, tmp_path):
        _, client, store, queue = service
        local = Executor(store=ResultStore(tmp_path / "local"))
        expected = local.run_sweep(SWEEP)

        handle = client.submit(SWEEP)
        assert handle.enqueued == len(SWEEP)
        worker_loop(queue, store, worker_id="w", exit_when_empty=True)

        remote = client.run_sweep(SWEEP, poll_s=0.05, timeout_s=30)
        assert set(remote) == set(expected)
        for spec in expected:
            assert remote[spec] == expected[spec], spec.label()

    def test_streamed_records_arrive_in_batches(self, service):
        server, client, store, queue = service
        server.batch = 2          # force several flushes
        digests = []
        for width in (1, 4):
            spec = RunSpec("tms", "tiny", "1x1", width, "glsc")
            Executor(store=store).run(spec)
            digests.append(spec.digest())
        records = list(client.stream_records(digests + ["f" * 64]))
        assert [r["digest"] for r in records] == digests

    def test_run_sweep_times_out_without_workers(self, service):
        _, client, _, _ = service
        with pytest.raises(ServiceError, match="workers"):
            client.run_sweep(
                Sweep([SPEC]), poll_s=0.05, timeout_s=0.3
            )


def eventually(predicate, timeout_s=5.0):
    """Poll for a server-side effect: counters are bumped in the
    request handler's ``finally``, which may run a beat after the
    client has already read the full response."""
    import time

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestMetricsEndpoint:
    def test_text_view_is_prometheus_exposition(self, service):
        _, client, _, _ = service
        client.health()
        text = client.metrics_text()
        assert "# TYPE queue_tasks_total counter" in text
        assert "# TYPE http_requests_total counter" in text
        assert "queue_pending_depth" in text

    def test_requests_are_counted_by_route(self, service):
        _, client, _, queue = service
        client.health()
        client.health()
        requests = queue.metrics.get("http_requests_total")
        assert eventually(
            lambda: requests.value(route="/healthz", method="GET") == 2
        )

    def test_json_view_bundles_registry_queue_and_workers(self, service):
        _, client, _, _ = service
        doc = client.metrics()
        assert "queue_tasks_total" in doc["metrics"]
        assert doc["queue"]["pending"] == 0
        assert doc["workers"] == []            # nobody drained yet

    def test_verify_param_cross_checks_the_depths(self, service):
        server, client, _, queue = service
        queue.submit(SPEC)
        _, doc = client._request_json(
            "GET", "/v1/metrics?format=json&verify=1"
        )
        verify = doc["queue_verify"]
        assert verify["scan"] == {"pending": 1, "leased": 0}
        assert verify["match"] is True

    def test_drained_worker_shows_up_as_heartbeat_series(self, service):
        _, client, store, queue = service
        client.submit(Sweep([SPEC]))
        worker_loop(
            queue, store, worker_id="hb-worker", exit_when_empty=True
        )
        text = client.metrics_text()
        assert 'worker_heartbeat_claims{worker_id="hb-worker"} 1' in text
        assert 'worker_heartbeat_executed{worker_id="hb-worker"} 1' in text
        doc = client.metrics()
        assert [w["worker_id"] for w in doc["workers"]] == ["hb-worker"]

    def test_streamed_records_are_counted(self, service):
        _, client, store, queue = service
        Executor(store=store).run(SPEC)
        list(client.stream_records([SPEC.digest()]))
        streamed = queue.metrics.get("records_streamed_total")
        assert eventually(lambda: streamed.total() == 1)


class TestSweepTracing:
    def test_server_mints_a_trace_id_per_submission(self, service):
        _, client, _, queue = service
        handle = client.submit(Sweep([SPEC]))
        assert handle.trace_id
        phases = [
            s["phase"]
            for s in collect_spans(queue.root, trace_id=handle.trace_id)
        ]
        assert phases == ["submitted", "enqueued"]

    def test_client_supplied_trace_id_wins(self, service):
        _, client, _, queue = service
        handle = client.submit(Sweep([SPEC]), trace_id="cafe0000cafe0000")
        assert handle.trace_id == "cafe0000cafe0000"
        assert collect_spans(queue.root, trace_id="cafe0000cafe0000")

    def test_full_drain_produces_the_whole_lifecycle(self, service):
        _, client, store, queue = service
        handle = client.submit(Sweep([SPEC]))
        worker_loop(queue, store, worker_id="w0", exit_when_empty=True)
        list(client.stream_records(handle.distinct_digests))

        expected = [
            "submitted", "enqueued", "claimed",
            "simulated", "saved", "streamed",
        ]

        def phases():
            return [
                s["phase"]
                for s in collect_spans(queue.root, trace_id=handle.trace_id)
            ]

        assert eventually(lambda: phases() == expected), phases()
        spans = collect_spans(queue.root, trace_id=handle.trace_id)
        actors = {s["actor"] for s in spans}
        assert "server" in actors
        assert "w0" in actors
        record = store.load_record(SPEC.digest())
        assert record["provenance"]["trace_id"] == handle.trace_id

    def test_warm_hits_are_not_traced_as_enqueued(self, service):
        _, client, store, queue = service
        Executor(store=store).run(SPEC)
        handle = client.submit(Sweep([SPEC]))
        assert handle.hits == 1
        assert collect_spans(queue.root, trace_id=handle.trace_id) == []


class TestClientUrls:
    def test_rejects_https(self):
        with pytest.raises(ConfigError):
            SweepClient("https://example.com")

    def test_bare_host_port(self):
        client = SweepClient("127.0.0.1:9999")
        assert (client.host, client.port) == ("127.0.0.1", 9999)
