"""Many concurrent writers, one store: the put-race contract.

Four processes hammer the same ``ResultStore`` with overlapping
digests.  Afterwards every record must parse (atomic-rename puts never
leave torn files), last-writer-wins must be unobservable (racing
records are value-equal apart from provenance), and the index sidecar
must cover every digest despite interleaved appends.  The synthetic
stats here are deterministic functions of the digest so value-equality
across writers holds by construction, exactly as it does for real
runs.
"""

import json
import multiprocessing

import pytest

from repro.sim.stats import MachineStats
from repro.sim.store import ResultStore

WRITERS = 4
ROUNDS = 25
DIGESTS = [f"{i:02d}" + "ab" * 31 for i in range(8)]  # shared by all


def _stats_for(digest: str) -> MachineStats:
    """Deterministic synthetic stats — same digest, same value."""
    seed = int(digest[:2])
    return MachineStats(cycles=1000 + seed, l1_accesses=seed * 7)


def _writer(root, writer_id: int) -> None:
    store = ResultStore(root)
    for round_no in range(ROUNDS):
        for digest in DIGESTS:
            store.save(
                digest,
                _stats_for(digest),
                spec={"kernel": f"k{int(digest[:2])}"},
                provenance={"writer": writer_id, "round": round_no},
            )


@pytest.fixture(scope="module")
def hammered_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("store")
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_writer, args=(root, writer_id))
        for writer_id in range(WRITERS)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    return ResultStore(root)


class TestConcurrentWriters:
    def test_every_record_parses_and_has_the_expected_value(
        self, hammered_store
    ):
        assert sorted(hammered_store.digests()) == sorted(DIGESTS)
        for digest in DIGESTS:
            record = hammered_store.load_record(digest)
            assert record is not None, f"torn/unreadable record {digest}"
            assert record["stats"] == _stats_for(digest).to_dict()

    def test_winner_is_one_complete_writer_not_a_blend(
        self, hammered_store
    ):
        for digest in DIGESTS:
            provenance = hammered_store.load_record(digest)["provenance"]
            assert provenance["writer"] in range(WRITERS)
            assert provenance["round"] in range(ROUNDS)

    def test_index_journal_covers_every_digest(self, hammered_store):
        index = hammered_store.index()
        assert set(index) == set(DIGESTS)
        for digest, entry in index.items():
            assert entry["cycles"] == _stats_for(digest).cycles

    def test_index_journal_has_no_torn_lines(self, hammered_store):
        journal = hammered_store.root / ResultStore.INDEX_NAME
        lines = journal.read_text().splitlines()
        # O_APPEND single-write lines from 4 processes never interleave.
        assert len(lines) == WRITERS * ROUNDS * len(DIGESTS)
        for line in lines:
            json.loads(line)


class TestIndexRecovery:
    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.save(DIGESTS[0], _stats_for(DIGESTS[0]))
        journal = store.root / ResultStore.INDEX_NAME
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"digest": "crash-torn-li')  # no newline: a crash
        index = store.index()
        assert set(index) == {DIGESTS[0]}

    def test_rebuild_index_regenerates_from_records(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for digest in DIGESTS[:3]:
            store.save(digest, _stats_for(digest))
        (store.root / ResultStore.INDEX_NAME).unlink()
        assert store.index() == {}
        assert store.rebuild_index() == 3
        assert set(store.index()) == set(DIGESTS[:3])
