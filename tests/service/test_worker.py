"""Workers draining a queue must be invisible in the results.

The acceptance test of the sweep service: two detached worker
*processes* (the real CLI verb, not an in-process shortcut) drain one
smoke sweep from a ``queue://`` directory, and the store they fill is
byte-identical to a serial in-process run — only provenance (worker
identity, timestamps) may differ.  Alongside it, in-process
``worker_loop`` tests cover the store-skip and poison-spec paths.
"""

import io
import json
import subprocess
import sys
from pathlib import Path

from repro.bench.suite import BenchSuite
from repro.obs.log import StructLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.sweeptrace import collect_spans, read_heartbeats
from repro.service.queue import WorkQueue
from repro.service.worker import worker_loop
from repro.sim.executor import Executor, RunSpec
from repro.sim.store import ResultStore

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")
SPEC = RunSpec("tms", "tiny", "1x1", 4, "glsc")


def canonical_records(store: ResultStore):
    """digest -> canonical JSON bytes of the record, sans provenance."""
    out = {}
    for digest in store.digests():
        record = store.load_record(digest)
        assert record is not None, f"unreadable record {digest}"
        record.pop("provenance", None)
        record.pop("created", None)
        out[digest] = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode()
    return out


def test_two_worker_processes_drain_smoke_sweep_byte_identical(tmp_path):
    specs = list(BenchSuite.smoke().specs())

    serial_store = ResultStore(tmp_path / "serial")
    Executor(jobs=1, store=serial_store).run_sweep(specs)

    queue_dir = tmp_path / "queue"
    shared_store = ResultStore(tmp_path / "shared")
    WorkQueue(queue_dir).submit_sweep(specs)

    workers = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.harness", "worker",
                f"queue://{queue_dir}",
                "--cache-dir", str(shared_store.root),
                "--worker-id", f"test-worker-{n}",
                "--exit-when-empty", "--quiet",
            ],
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
        )
        for n in range(2)
    ]
    for proc in workers:
        assert proc.wait(timeout=300) == 0

    assert WorkQueue(queue_dir).is_empty()
    serial_records = canonical_records(serial_store)
    shared_records = canonical_records(shared_store)
    assert set(shared_records) == set(serial_records)
    for digest, payload in serial_records.items():
        assert shared_records[digest] == payload, (
            f"record {digest} differs between serial and worker runs"
        )

    # Both workers pulled weight, and each record names its producer.
    producers = {
        shared_store.load_record(d)["provenance"].get("worker_id")
        for d in shared_store.digests()
    }
    assert producers <= {"test-worker-0", "test-worker-1"}
    assert len(producers) == 2, "one worker drained everything"


def test_executor_queue_backend_delegates_to_workers(tmp_path):
    """``Executor(backend="queue://...")`` runs nothing itself."""
    import threading

    store = ResultStore(tmp_path / "store")
    queue_dir = tmp_path / "queue"
    executor = Executor(
        store=store,
        backend=f"queue://{queue_dir}",
        queue_poll_s=0.05,
        queue_timeout_s=120,
    )
    worker = threading.Thread(
        target=worker_loop,
        args=(WorkQueue(queue_dir), store),
        kwargs={"worker_id": "bg", "idle_exit_s": 10, "poll_s": 0.05},
        daemon=True,
    )
    worker.start()

    local = Executor(store=ResultStore(tmp_path / "local")).run(SPEC)
    stats = executor.run(SPEC)
    assert stats == local
    assert executor.counters.queued == 1
    assert executor.counters.simulated == 0
    assert [t.source for t in executor.telemetry] == ["queue"]
    worker.join(timeout=60)


class TestWorkerLoop:
    def test_skips_digests_the_store_already_holds(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        Executor(store=store).run(SPEC)
        queue = WorkQueue(tmp_path / "q")
        queue.submit(SPEC)
        summary = worker_loop(
            queue, store, worker_id="w", exit_when_empty=True
        )
        assert summary.skipped == 1
        assert summary.executed == 0
        assert queue.is_empty()

    def test_survives_a_poison_spec(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        queue = WorkQueue(tmp_path / "q")
        queue.submit(RunSpec("no-such-kernel", "tiny", "1x1", 4, "glsc"))
        queue.submit(SPEC)
        summary = worker_loop(
            queue, store, worker_id="w", exit_when_empty=True
        )
        assert summary.executed == 1
        assert summary.failed == 1
        assert SPEC.digest() in store
        # The failed task was nacked, not lost: it is pending again.
        assert queue.counts()["pending"] == 1


class TestWorkerTelemetry:
    def drain(self, tmp_path, trace_id=""):
        """One worker drains one traced (or untraced) task."""
        registry = MetricsRegistry()
        stream = io.StringIO()
        store = ResultStore(tmp_path / "s", metrics=registry)
        queue = WorkQueue(tmp_path / "q", metrics=registry)
        queue.submit(SPEC, trace_id=trace_id)
        summary = worker_loop(
            queue, store, worker_id="w0", exit_when_empty=True,
            log=StructLogger(stream=stream), heartbeat_s=0.0,
        )
        return summary, registry, stream, store, queue

    def test_worker_metrics_count_claims_and_outcomes(self, tmp_path):
        summary, registry, _, _, _ = self.drain(tmp_path)
        assert summary.executed == 1
        assert registry.get("worker_claims_total").value(
            worker_id="w0"
        ) == 1
        assert registry.get("worker_tasks_total").value(
            worker_id="w0", outcome="executed"
        ) == 1
        assert registry.get("worker_sim_seconds").count(
            worker_id="w0"
        ) == 1
        assert registry.get("store_puts_total").total() == 1

    def test_heartbeat_file_carries_the_counters(self, tmp_path):
        summary, _, _, _, queue = self.drain(tmp_path)
        beats = read_heartbeats(queue.root)
        assert len(beats) == 1
        beat = beats[0]
        assert beat["worker_id"] == "w0"
        assert beat["claims"] == 1
        assert beat["executed"] == 1
        assert beat["failed"] == 0
        assert beat["sim_wall_s"] > 0.0

    def test_contention_series_and_heartbeat_rollup(self, tmp_path):
        # A contended multi-thread point produces nonzero conflict
        # counters; the worker folds them into contention_* series and
        # its heartbeat so the server can aggregate across processes.
        registry = MetricsRegistry()
        store = ResultStore(tmp_path / "s", metrics=registry)
        queue = WorkQueue(tmp_path / "q", metrics=registry)
        contended = RunSpec("tms", "tiny", "4x4", 4, "glsc")
        queue.submit(contended)
        summary = worker_loop(
            queue, store, worker_id="w0", exit_when_empty=True,
            heartbeat_s=0.0,
        )
        stats = store.load_record(contended.digest())["stats"]
        expected = sum(stats["glsc_element_failures"].values())
        assert expected > 0
        assert summary.contention_failed_lanes == expected
        lanes = registry.get("contention_failed_lanes_total")
        assert lanes.total() == expected
        assert registry.get("contention_failure_rate").count(
            worker_id="w0"
        ) == 1
        beat = read_heartbeats(queue.root)[0]
        assert beat["contention_failed_lanes"] == expected
        assert beat["contention_sc_failures"] == stats["sc_failures"]

    def test_single_thread_task_stays_consistent(self, tmp_path):
        # Even a 1x1 point feeds the series (intra-vector aliases can
        # fail lanes without any cross-thread contention); the summary,
        # registry, and heartbeat must agree with the stored stats.
        summary, registry, _, store, queue = self.drain(tmp_path)
        stats = store.load_record(SPEC.digest())["stats"]
        expected = sum(stats["glsc_element_failures"].values())
        assert summary.contention_failed_lanes == expected
        assert registry.get(
            "contention_failed_lanes_total"
        ).total() == expected
        assert registry.get("contention_failure_rate").count(
            worker_id="w0"
        ) == 1
        beat = read_heartbeats(queue.root)[0]
        assert beat["contention_failed_lanes"] == expected

    def test_structured_log_narrates_the_drain(self, tmp_path):
        _, _, stream, _, _ = self.drain(tmp_path)
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        events = [r["event"] for r in records]
        assert "done-task" in events
        done = next(r for r in records if r["event"] == "done-task")
        assert done["worker_id"] == "w0"
        assert done["digest"] == SPEC.digest()[:12]

    def test_traced_drain_leaves_lifecycle_spans(self, tmp_path):
        _, _, _, store, queue = self.drain(tmp_path, trace_id="t1")
        phases = [
            s["phase"] for s in collect_spans(queue.root, trace_id="t1")
        ]
        assert phases == ["enqueued", "claimed", "simulated", "saved"]
        record = store.load_record(SPEC.digest())
        assert record["provenance"]["trace_id"] == "t1"

    def test_untraced_drain_stamps_no_trace_provenance(self, tmp_path):
        _, _, _, store, queue = self.drain(tmp_path)
        record = store.load_record(SPEC.digest())
        assert "trace_id" not in record["provenance"]
        assert collect_spans(queue.root) == []

    def test_failed_task_counts_as_failed_outcome(self, tmp_path):
        registry = MetricsRegistry()
        stream = io.StringIO()
        store = ResultStore(tmp_path / "s", metrics=registry)
        queue = WorkQueue(tmp_path / "q", metrics=registry)
        queue.submit(RunSpec("no-such-kernel", "tiny", "1x1", 4, "glsc"))
        worker_loop(
            queue, store, worker_id="w0", exit_when_empty=True,
            log=StructLogger(stream=stream),
        )
        assert registry.get("worker_tasks_total").value(
            worker_id="w0", outcome="failed"
        ) == 1
        fails = [
            json.loads(line) for line in stream.getvalue().splitlines()
            if json.loads(line)["event"] == "fail"
        ]
        assert len(fails) == 1
        assert fails[0]["level"] == "warning"
