"""Batched-backend determinism: batching must be unobservable.

The batched backend (:mod:`repro.sim.batch`) shares interned datasets
and image snapshots across machines and interleaves them all on one
event heap — three ways a bug could leak one machine's state or
scheduling into another's results.  These tests pin the contract from
every angle:

* property-style: seeded-random subsets of the smoke grid, shuffled,
  mixed across protocols/variants/widths, at batch sizes including 1,
  are stats-digest-identical to serial :func:`execute_spec`;
* the scheduling quantum (``chunk_cycles``) is sweep-invariant;
* the executor's ``backend="batch"`` store records are byte-identical
  to solo records apart from provenance, and its telemetry carries the
  batch tags.
"""

import hashlib
import json
import random

from repro.bench.suite import BenchSuite
from repro.sim.batch import BatchRunner
from repro.sim.executor import Executor, RunSpec, execute_spec
from repro.sim.store import ResultStore


def digest(stats) -> str:
    payload = json.dumps(
        stats.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def spec_pool():
    """Smoke grid plus protocol/variant off-grid points to mix in."""
    pool = list(BenchSuite.smoke().specs())
    pool += [
        RunSpec("tms", "tiny", "1x2", 4, "glsc",
                overrides={"protocol": "mesi"}),
        RunSpec("hip", "tiny", "1x2", 4, "base",
                overrides={"protocol": "moesi"}),
        RunSpec("tms", "tiny", "1x2", 1, "base", warm=True),
    ]
    return pool


class TestBatchMatchesSerial:
    def test_random_subsets_identical_to_serial(self):
        """Seeded-random mixed batches reproduce execute_spec exactly."""
        rng = random.Random(0xBA7C4)
        pool = spec_pool()
        serial = {spec: digest(execute_spec(spec)) for spec in pool}
        for batch_size in (1, 2, 3, 7):
            subset = rng.sample(pool, rng.randint(2, len(pool)))
            rng.shuffle(subset)
            results = BatchRunner(subset).run()
            assert [r.spec for r in results] == subset
            for result in results:
                assert digest(result.stats) == serial[result.spec], (
                    f"batched result for {result.spec.label()} diverged "
                    f"from serial at batch_size={batch_size}"
                )

    def test_chunk_cycles_is_unobservable(self):
        """The cross-machine interleave quantum never changes results."""
        specs = spec_pool()[:5]
        want = [digest(r.stats) for r in BatchRunner(specs).run()]
        for chunk in (1, 17, 1 << 20):
            got = [
                digest(r.stats)
                for r in BatchRunner(specs, chunk_cycles=chunk).run()
            ]
            assert got == want, f"results moved at chunk_cycles={chunk}"

    def test_batch_of_one_matches_serial(self):
        spec = spec_pool()[0]
        (result,) = BatchRunner([spec]).run()
        assert digest(result.stats) == digest(execute_spec(spec))

    def test_interning_is_shared_but_results_are_private(self):
        """Same-image specs share one interned snapshot, distinct stats."""
        specs = [
            RunSpec("tms", "tiny", "1x2", 4, "base"),
            RunSpec("tms", "tiny", "1x2", 4, "glsc"),
        ]
        runner = BatchRunner(specs)
        results = runner.run()
        assert runner.info["interned_images"] == 1
        assert digest(results[0].stats) != digest(results[1].stats)
        for spec, result in zip(specs, results):
            assert digest(result.stats) == digest(execute_spec(spec))


class TestExecutorBatchBackend:
    def test_store_records_byte_identical_sans_provenance(self, tmp_path):
        """A batched sweep's records equal a solo sweep's, bar provenance."""
        specs = spec_pool()[:6]
        solo_store = ResultStore(tmp_path / "solo")
        batch_store = ResultStore(tmp_path / "batch")
        solo = Executor(store=solo_store)
        solo.run_sweep(specs)
        batched = Executor(store=batch_store, backend="batch", batch_size=4)
        batched.run_sweep(specs)
        assert batched.counters.batched == len(specs)
        assert batched.counters.simulated == 0
        digests = [spec.digest() for spec in specs]
        for spec_digest in digests:
            a = solo_store.load_record(spec_digest)
            b = batch_store.load_record(spec_digest)
            assert a is not None and b is not None
            for record in (a, b):
                record.pop("provenance")
                record.pop("created")
            assert a == b

    def test_batch_telemetry_tags(self):
        specs = spec_pool()[:5]
        executor = Executor(backend="batch", batch_size=2)
        executor.run_sweep(specs)
        batch_rows = [
            t for t in executor.telemetry if t.source == "batch"
        ]
        assert len(batch_rows) == len(specs)
        assert all(t.batch_id for t in batch_rows)
        # batch_size=2 over 5 specs -> occupancies 2,2,1.
        assert sorted(t.batch_occupancy for t in batch_rows) == [1, 2, 2, 2, 2]
        assert all(t.wall_time_s > 0 for t in batch_rows)

    def test_batched_results_match_solo_executor(self):
        specs = spec_pool()[:4]
        solo = Executor().run_sweep(specs)
        batched = Executor(backend="batch", batch_size=8).run_sweep(specs)
        for spec in specs:
            assert digest(batched[spec]) == digest(solo[spec])
