"""Unit tests for machine configuration validation and derivation."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import CONFIG_NAMES, MachineConfig, named_config


class TestDefaultsMatchTable1:
    def test_paper_parameters(self):
        cfg = MachineConfig()
        assert cfg.l1_size_bytes == 32 * 1024
        assert cfg.l1_assoc == 4
        assert cfg.line_bytes == 64
        assert cfg.l1_hit_latency == 3
        assert cfg.l2_size_bytes == 16 * 1024 * 1024
        assert cfg.l2_assoc == 8
        assert cfg.l2_banks == 16
        assert cfg.l2_latency == 12
        assert cfg.mem_latency == 280
        assert cfg.issue_width == 2

    def test_min_glsc_latency(self):
        for width in (1, 4, 16):
            cfg = MachineConfig(simd_width=width)
            assert cfg.min_glsc_latency == 4 + width

    def test_derived_geometry(self):
        cfg = MachineConfig()
        assert cfg.l1_sets == 128          # 32KB / (64B * 4 ways)
        assert cfg.l2_sets == 32768        # 16MB / (64B * 8 ways)
        assert cfg.n_threads == cfg.n_cores * cfg.threads_per_core


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(n_cores=0),
            dict(threads_per_core=0),
            dict(simd_width=0),
            dict(issue_width=0),
            dict(l1_assoc=3),
            dict(line_bytes=48),
            dict(l1_size_bytes=1000),
            dict(l1_hit_latency=0),
            dict(mem_latency=0),
            dict(glsc_buffer_entries=-1),
            dict(prefetch_degree=0),
        ],
    )
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ConfigError):
            MachineConfig(**bad)

    def test_frozen(self):
        cfg = MachineConfig()
        with pytest.raises(Exception):
            cfg.n_cores = 8


class TestHelpers:
    def test_with_topology(self):
        cfg = MachineConfig().with_topology(4, 2, simd_width=16)
        assert (cfg.n_cores, cfg.threads_per_core, cfg.simd_width) == (4, 2, 16)

    def test_with_topology_keeps_width(self):
        cfg = MachineConfig(simd_width=16).with_topology(2, 2)
        assert cfg.simd_width == 16

    def test_describe_includes_table1_fields(self):
        desc = MachineConfig().describe()
        assert desc["mem_latency"] == 280
        assert "32KB" in desc["l1"]
        assert "16MB" in desc["l2"]

    def test_named_configs(self):
        assert CONFIG_NAMES == ("1x1", "1x4", "4x1", "4x4")
        cfg = named_config("1x4", simd_width=1, prefetch_enabled=False)
        assert cfg.threads_per_core == 4
        assert not cfg.prefetch_enabled

    def test_named_config_rejects_garbage(self):
        with pytest.raises(ConfigError):
            named_config("four-by-four")
