"""Executor/RunSpec tests: identity, dedup, parallel equivalence.

The tiny dataset keeps every simulation here sub-second; what is under
test is the run API's semantics, not calibrated numbers.
"""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.harness import experiments
from repro.sim.config import MachineConfig
from repro.sim.executor import Executor, RunSpec, Sweep, execute_spec
from repro.sim.store import ResultStore

SPEC = RunSpec("tms", "tiny", "1x1", 4, "glsc")


class TestRunSpec:
    def test_immutable_and_hashable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SPEC.kernel = "gbc"
        assert SPEC == RunSpec("tms", "tiny", "1x1", 4, "glsc")
        assert hash(SPEC) == hash(RunSpec("tms", "tiny", "1x1", 4, "glsc"))

    def test_overrides_normalized(self):
        a = RunSpec("tms", overrides={"mem_latency": 70, "l2_latency": 14})
        b = RunSpec(
            "tms", overrides=(("l2_latency", 14), ("mem_latency", 70))
        )
        assert a == b
        assert hash(a) == hash(b)
        assert a.digest() == b.digest()

    def test_duplicate_override_names_rejected(self):
        with pytest.raises(ConfigError):
            RunSpec("tms", overrides=(("mem_latency", 70),
                                      ("mem_latency", 80)))

    def test_config_resolution(self):
        spec = RunSpec("tms", "A", "4x1", 16,
                       overrides={"mem_latency": 99})
        config = spec.config()
        assert config.n_cores == 4
        assert config.threads_per_core == 1
        assert config.simd_width == 16
        assert config.mem_latency == 99

    def test_micro_constructor(self):
        spec = RunSpec.micro("B", "4x4", 4, "base")
        assert spec.is_micro
        assert spec.warm
        assert spec.kernel == "micro:B"

    def test_with_overrides_merges(self):
        spec = SPEC.with_overrides(mem_latency=70)
        assert dict(spec.overrides) == {"mem_latency": 70}
        assert dict(spec.with_overrides(mem_latency=90).overrides) == {
            "mem_latency": 90
        }


class TestDigest:
    def test_stable_across_instances(self):
        assert SPEC.digest() == RunSpec("tms", "tiny", "1x1", 4,
                                        "glsc").digest()

    def test_changes_with_any_spec_axis(self):
        digests = {
            SPEC.digest(),
            RunSpec("gbc", "tiny", "1x1", 4, "glsc").digest(),
            RunSpec("tms", "A", "1x1", 4, "glsc").digest(),
            RunSpec("tms", "tiny", "4x4", 4, "glsc").digest(),
            RunSpec("tms", "tiny", "1x1", 16, "glsc").digest(),
            RunSpec("tms", "tiny", "1x1", 4, "base").digest(),
            dataclasses.replace(SPEC, warm=True).digest(),
        }
        assert len(digests) == 7

    def test_changes_with_config_override(self):
        assert SPEC.digest() != SPEC.with_overrides(mem_latency=279).digest()
        assert (
            SPEC.with_overrides(mem_latency=280).digest()
            != SPEC.with_overrides(mem_latency=279).digest()
        )

    def test_default_valued_override_is_identity(self):
        # Spelling out the default produces the same resolved config,
        # hence the same store entry.
        default = MachineConfig().mem_latency
        assert SPEC.digest() == SPEC.with_overrides(
            mem_latency=default
        ).digest()

    def test_machine_config_digest_sensitivity(self):
        config = MachineConfig()
        assert config.digest() == MachineConfig().digest()
        for change in ({"mem_latency": 100}, {"l1_assoc": 8},
                       {"prefetch_enabled": False}):
            assert config.digest() != dataclasses.replace(
                config, **change
            ).digest()


class TestSweep:
    def test_product_covers_grid(self):
        sweep = Sweep.product(("tms", "gbc"), ("tiny",), ("1x1", "4x4"),
                              (1, 4), ("base", "glsc"))
        assert len(sweep) == 2 * 1 * 2 * 2 * 2
        assert len(set(sweep)) == len(sweep)

    def test_concatenation_and_distinct(self):
        sweep = Sweep([SPEC]) + Sweep([SPEC, RunSpec("gbc", "tiny")])
        assert len(sweep) == 3
        assert sweep.distinct() == [SPEC, RunSpec("gbc", "tiny")]


class TestExecutor:
    def test_dedup_within_sweep(self):
        executor = Executor()
        results = executor.run_sweep(Sweep([SPEC, SPEC, SPEC]))
        assert executor.simulations == 1
        assert results[SPEC].cycles > 0

    def test_memo_across_calls(self):
        executor = Executor()
        first = executor.run(SPEC)
        second = executor.run(SPEC)
        assert executor.simulations == 1
        assert first is second

    def test_executor_overrides_merge_under_spec(self):
        executor = Executor(mem_latency=70)
        resolved = executor.resolve(SPEC)
        assert resolved.config().mem_latency == 70
        # A spec's own override wins over the executor default.
        spec = SPEC.with_overrides(mem_latency=140)
        assert executor.resolve(spec).config().mem_latency == 140

    def test_executor_override_changes_results(self):
        near = Executor(mem_latency=30).run(SPEC)
        far = Executor(mem_latency=560).run(SPEC)
        assert near.cycles < far.cycles

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigError):
            Executor(jobs=0)

    def test_serial_parallel_equivalence(self):
        sweep = Sweep.product(("tms", "hip"), ("tiny",), ("1x1",), (4,),
                              ("base", "glsc"))
        serial = Executor(jobs=1).run_sweep(sweep)
        parallel = Executor(jobs=4).run_sweep(sweep)
        assert set(serial) == set(parallel)
        for spec in serial:
            assert serial[spec] == parallel[spec], spec.label()

    def test_execute_spec_matches_executor(self):
        assert execute_spec(SPEC) == Executor().run(SPEC)


class TestSessionFacadeRemoved:
    def test_facade_module_is_gone(self):
        with pytest.raises(ImportError):
            import repro.harness.session  # noqa: F401

    def test_executor_overrides_replace_session_overrides(self):
        slow = Executor(mem_latency=560).run(SPEC)
        fast = Executor(mem_latency=30).run(SPEC)
        assert fast.cycles < slow.cycles

    def test_experiments_reuse_a_shared_executor_memo(self):
        executor = Executor()
        first = experiments.fig8(("tms",), ("tiny",), widths=(1,),
                                 executor=executor)
        again = experiments.fig8(("tms",), ("tiny",), widths=(1,),
                                 executor=executor)
        assert first[0].ratios == again[0].ratios
        # The second pass reused the executor's memo: no new sims.
        assert executor.simulations == 2


class TestTelemetry:
    def test_every_served_spec_gets_a_record(self):
        executor = Executor()
        executor.run(SPEC)       # simulated
        executor.run(SPEC)       # memo
        sources = [t.source for t in executor.telemetry]
        assert sources == ["simulated", "memo"]
        fresh, memo = executor.telemetry
        assert fresh.digest == memo.digest == SPEC.digest()
        assert fresh.label == SPEC.label()
        assert fresh.cycles == memo.cycles > 0
        assert fresh.wall_time_s > 0
        assert fresh.worker_pid > 0
        # A memo hit costs no simulation wall time.
        assert memo.wall_time_s == 0.0

    def test_store_hits_are_labelled(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        Executor(store=store).run(SPEC)
        warm = Executor(store=store)
        warm.run(SPEC)
        assert [t.source for t in warm.telemetry] == ["store"]

    def test_parallel_sweep_records_worker_pids(self):
        sweep = Sweep.product(("tms", "hip"), ("tiny",), ("1x1",), (4,),
                              ("glsc",))
        executor = Executor(jobs=2)
        executor.run_sweep(sweep)
        assert len(executor.telemetry) == 2
        for t in executor.telemetry:
            assert t.source == "simulated"
            assert t.worker_pid > 0
            assert t.cycles > 0


class TestObservedRuns:
    """A tracer/observer must actually see the run — never be silently
    bypassed by the memo, the store, or a worker process."""

    def test_tracer_forces_fresh_inprocess_simulation(self, tmp_path):
        from repro.sim.trace import InstructionTrace

        store = ResultStore(tmp_path / "cache")
        Executor(store=store).run(SPEC)  # store now holds the result

        observed = Executor(store=store, jobs=4)
        trace = InstructionTrace()
        stats = observed.run(SPEC, tracer=trace)
        assert observed.simulations == 1   # not served from the store
        assert observed.store_hits == 0
        assert len(trace) > 0              # the tracer saw every retire
        assert stats.cycles > 0
        # In-process: the recorded pid is this process, not a worker.
        import os

        assert observed.telemetry[-1].worker_pid == os.getpid()

    def test_observed_run_bypasses_the_memo_too(self):
        from repro.sim.trace import InstructionTrace

        executor = Executor()
        executor.run(SPEC)
        trace = InstructionTrace()
        executor.run(SPEC, tracer=trace)
        assert executor.simulations == 2
        assert len(trace) > 0

    def test_event_bus_observer_counts_as_observed(self):
        from repro.obs.bus import EventBus
        from repro.obs.sinks import MetricsSink

        executor = Executor(jobs=4)
        executor.run(SPEC)
        bus = EventBus()
        metrics = bus.attach(MetricsSink())
        executor.run(SPEC, obs=bus)
        assert executor.simulations == 2
        assert metrics.events_seen > 0

    def test_observed_and_unobserved_stats_agree(self):
        from repro.sim.trace import InstructionTrace

        plain = Executor().run(SPEC)
        traced = Executor().run(SPEC, tracer=InstructionTrace())
        assert traced == plain  # observation never changes timing


class TestCrossFigureDedup:
    def test_shared_points_simulated_once(self):
        executor = Executor()
        experiments.fig6(("tms",), ("tiny",), executor=executor)
        count = executor.simulations
        # fig8's width-4 column and table4's runs are subsets of what
        # fig6 already simulated, plus new widths only.
        experiments.table4(("tms",), ("tiny",), executor=executor)
        assert executor.simulations == count
        experiments.fig8(("tms",), ("tiny",), widths=(4,),
                         executor=executor)
        assert executor.simulations == count
