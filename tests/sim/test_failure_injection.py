"""Failure injection: the best-effort model under spurious loss.

Section 3 of the paper: "an implementation is correct as long as it is
conservative enough — it is acceptable to have reservations invalidated
for other reasons, such as cache line evictions."  These tests destroy
reservations *at random* during execution and require that

* every kernel still produces the oracle answer (retry loops absorb
  the loss), and
* the GLSC failure rate rises accordingly (the loss is visible, not
  silently ignored).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.kernels.registry import KERNEL_ORDER
from repro.sim.config import MachineConfig
from repro.sim.runner import run_kernel


def chaotic_config(loss: float, **kwargs) -> MachineConfig:
    defaults = dict(
        n_cores=2,
        threads_per_core=2,
        simd_width=4,
        chaos_reservation_loss=loss,
        # Tight cap: a pathological loss pattern should fail fast and
        # reproducibly, not hang the suite.
        max_cycles=5_000_000,
    )
    defaults.update(kwargs)
    return MachineConfig(**defaults)


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
@pytest.mark.parametrize("variant", ["base", "glsc"])
def test_kernels_correct_under_reservation_loss(kernel, variant):
    config = chaotic_config(0.05)
    result = run_kernel(kernel, "tiny", config, variant)
    assert result.stats.cycles > 0  # verified inside run_kernel


def test_chaos_events_actually_fire():
    config = chaotic_config(0.2)
    from repro.kernels.registry import make_kernel
    from repro.sim.machine import Machine

    kernel = make_kernel("tms", "tiny", config.n_threads)
    machine = Machine(config)
    kernel.allocate(machine.image)
    for _ in range(config.n_threads):
        machine.add_program(kernel.program("glsc"))
    machine.run()
    kernel.verify()
    assert machine.coherence.chaos_events > 0


def test_loss_raises_failure_rate():
    calm = run_kernel(
        "tms", "tiny", chaotic_config(0.0), "glsc"
    ).stats
    stormy = run_kernel(
        "tms", "tiny", chaotic_config(0.3), "glsc"
    ).stats
    assert stormy.glsc_failure_rate > calm.glsc_failure_rate


def test_loss_also_breaks_scalar_reservations():
    calm = run_kernel(
        "tms", "tiny", chaotic_config(0.0), "base"
    ).stats
    stormy = run_kernel(
        "tms", "tiny", chaotic_config(0.3), "base"
    ).stats
    assert stormy.sc_failures > calm.sc_failures


def test_total_loss_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(chaos_reservation_loss=1.0)


@settings(
    deadline=None, max_examples=10,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    loss=st.floats(0.0, 0.4),
    seed=st.integers(0, 10_000),
    kernel=st.sampled_from(["hip", "gbc", "smc"]),
)
def test_random_loss_property(loss, seed, kernel):
    """Any loss rate below 1 preserves correctness (verified inside)."""
    config = chaotic_config(loss, chaos_seed=seed)
    run_kernel(kernel, "tiny", config, "glsc")
