"""Integration tests for the machine cycle loop, SMT, and barriers."""

import pytest

from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.sim.config import MachineConfig, named_config
from repro.sim.machine import Machine


def run_machine(cfg, program_factory):
    machine = Machine(cfg)
    for tid in range(cfg.n_threads):
        machine.add_program(program_factory(machine))
    stats = machine.run()
    machine.coherence.check_invariants()
    return machine, stats


class TestBasics:
    def test_single_thread_alu_program(self):
        cfg = MachineConfig(n_cores=1, threads_per_core=1)
        machine = Machine(cfg)

        def program(ctx):
            for _ in range(10):
                yield ctx.alu()

        machine.add_program(program)
        stats = machine.run()
        assert stats.total_instructions == 10
        assert stats.cycles >= 10

    def test_result_delivery(self):
        cfg = MachineConfig()
        machine = Machine(cfg)
        view = machine.image.alloc_array([41])
        seen = {}

        def program(ctx):
            value = yield ctx.load(view.addr(0))
            seen["value"] = value
            yield ctx.store(view.addr(0), value + 1)

        machine.add_program(program)
        machine.run()
        assert seen["value"] == 41
        assert view[0] == 42

    def test_too_many_programs_rejected(self):
        cfg = MachineConfig(n_cores=1, threads_per_core=1)
        machine = Machine(cfg)

        def program(ctx):
            yield ctx.alu()

        machine.add_program(program)
        with pytest.raises(ConfigError):
            machine.add_program(program)

    def test_machine_runs_once(self):
        cfg = MachineConfig()
        machine = Machine(cfg)

        def program(ctx):
            yield ctx.alu()

        machine.add_program(program)
        machine.run()
        with pytest.raises(SimulationError):
            machine.run()

    def test_run_without_programs_rejected(self):
        with pytest.raises(SimulationError):
            Machine(MachineConfig()).run()

    def test_thread_placement_is_cyclic(self):
        cfg = MachineConfig(n_cores=2, threads_per_core=2)
        machine = Machine(cfg)

        def program(ctx):
            yield ctx.alu()

        tids = [machine.add_program(program) for _ in range(4)]
        assert [t.global_tid for t in machine.cores[0].threads] == [0, 2]
        assert [t.global_tid for t in machine.cores[1].threads] == [1, 3]


class TestSmtLatencyHiding:
    def test_smt_hides_memory_latency(self):
        """1x4 should finish 4x the memory work in much less than 4x
        the 1x1 time — the effect the paper's 1x4 bars rely on."""

        def make_program(machine, arrays):
            def program(ctx):
                view = arrays[ctx.tid]
                for i in range(len(view)):
                    yield ctx.load(view.addr(i))

            return program

        def run(cfg):
            machine = Machine(cfg)
            arrays = [
                machine.image.alloc_zeros(64, align=4096)
                for _ in range(cfg.n_threads)
            ]
            # Defeat the stride prefetcher's benefit comparison by
            # disabling it: we want raw miss latency.
            for tid in range(cfg.n_threads):
                machine.add_program(make_program(machine, arrays))
            return machine.run().cycles

        cycles_1x1 = run(
            MachineConfig(n_cores=1, threads_per_core=1, prefetch_enabled=False)
        )
        cycles_1x4 = run(
            MachineConfig(n_cores=1, threads_per_core=4, prefetch_enabled=False)
        )
        assert cycles_1x4 < 2.5 * cycles_1x1  # 4x work, far less than 4x time


class TestAtomicity:
    def test_llsc_counter_no_lost_updates(self):
        cfg = MachineConfig(n_cores=4, threads_per_core=2, simd_width=1)
        machine = Machine(cfg)
        counter = machine.image.alloc_zeros(1)
        increments = 25

        def program(ctx):
            for _ in range(increments):
                while True:
                    value = yield ctx.ll(counter.base)
                    yield ctx.alu()
                    ok = yield ctx.sc(counter.base, value + 1)
                    if ok:
                        break

        for _ in range(cfg.n_threads):
            machine.add_program(program)
        stats = machine.run()
        assert counter[0] == increments * cfg.n_threads
        assert stats.sc_count >= increments * cfg.n_threads

    def test_glsc_counter_no_lost_updates(self):
        cfg = MachineConfig(n_cores=4, threads_per_core=2, simd_width=4)
        machine = Machine(cfg)
        counters = machine.image.alloc_zeros(8)
        per_thread = 12

        def program(ctx):
            indices = [(ctx.tid + k) % 8 for k in range(ctx.w)]
            for _ in range(per_thread):
                todo = ctx.all_ones()
                while todo.any():
                    vals, got = yield ctx.vgatherlink(
                        counters.base, indices, todo
                    )
                    inc = yield ctx.valu(
                        lambda v=vals, g=got: tuple(
                            x + 1 if g.lane(i) else x
                            for i, x in enumerate(v)
                        )
                    )
                    ok = yield ctx.vscattercond(
                        counters.base, indices, inc, got
                    )
                    todo = yield ctx.kalu(lambda t=todo, o=ok: t.andnot(o))

        for _ in range(cfg.n_threads):
            machine.add_program(program)
        machine.run()
        # Every lane of every thread increments one counter per round.
        assert sum(counters.to_list()) == cfg.n_threads * per_thread * 4

    def test_aliased_lanes_within_thread_are_serialized(self):
        cfg = MachineConfig(n_cores=1, threads_per_core=1, simd_width=4)
        machine = Machine(cfg)
        counter = machine.image.alloc_zeros(1)

        def program(ctx):
            indices = [0, 0, 0, 0]
            todo = ctx.all_ones()
            while todo.any():
                vals, got = yield ctx.vgatherlink(counter.base, indices, todo)
                inc = yield ctx.valu(
                    lambda v=vals, g=got: tuple(
                        x + 1 if g.lane(i) else x for i, x in enumerate(v)
                    )
                )
                ok = yield ctx.vscattercond(counter.base, indices, inc, got)
                todo = yield ctx.kalu(lambda t=todo, o=ok: t.andnot(o))

        machine.add_program(program)
        stats = machine.run()
        assert counter[0] == 4  # each alias winner applied exactly once
        assert stats.glsc_element_failures["alias"] == 3 + 2 + 1


class TestBarriers:
    def test_barrier_rendezvous(self):
        cfg = MachineConfig(n_cores=2, threads_per_core=2)
        machine = Machine(cfg)
        flags = machine.image.alloc_zeros(4)
        observed = {}

        def program(ctx):
            yield ctx.store(flags.addr(ctx.tid), 1)
            yield ctx.barrier()
            total = 0
            for t in range(4):
                value = yield ctx.load(flags.addr(t))
                total += value
            observed[ctx.tid] = total

        for _ in range(4):
            machine.add_program(program)
        machine.run()
        assert all(total == 4 for total in observed.values())

    def test_uneven_arrival(self):
        cfg = MachineConfig(n_cores=1, threads_per_core=2)
        machine = Machine(cfg)

        def slow(ctx):
            for _ in range(200):
                yield ctx.alu()
            yield ctx.barrier()

        def fast(ctx):
            yield ctx.alu()
            yield ctx.barrier()

        machine.add_program(slow)
        machine.add_program(fast)
        stats = machine.run()
        # The fast thread's barrier wait is accounted as sync time.
        assert stats.threads[1].sync_cycles > 150

    def test_thread_exit_releases_barrier(self):
        """A thread that finishes without reaching the barrier must not
        deadlock the others (live-thread counting)."""
        cfg = MachineConfig(n_cores=1, threads_per_core=2)
        machine = Machine(cfg)

        def exits_early(ctx):
            yield ctx.alu()

        def waits(ctx):
            for _ in range(50):
                yield ctx.alu()
            yield ctx.barrier()

        machine.add_program(exits_early)
        machine.add_program(waits)
        machine.run()  # must terminate


class TestStatsAccounting:
    def test_sync_cycles_attributed(self):
        cfg = MachineConfig(n_cores=1, threads_per_core=1, simd_width=1)
        machine = Machine(cfg)
        word = machine.image.alloc_zeros(1)

        def program(ctx):
            value = yield ctx.ll(word.base)
            ok = yield ctx.sc(word.base, value + 1)
            assert ok

        machine.add_program(program)
        stats = machine.run()
        assert stats.threads[0].sync_cycles > 0
        assert stats.threads[0].sync_instructions == 2

    def test_mem_stalls_attributed(self):
        cfg = MachineConfig(prefetch_enabled=False)
        machine = Machine(cfg)
        view = machine.image.alloc_zeros(1)

        def program(ctx):
            yield ctx.load(view.base)

        machine.add_program(program)
        stats = machine.run()
        # Cold load goes to memory: the stall is roughly mem latency.
        assert stats.threads[0].mem_stall_cycles > cfg.mem_latency

    def test_instruction_counts(self):
        cfg = MachineConfig()
        machine = Machine(cfg)

        def program(ctx):
            yield ctx.alu(5)
            yield ctx.valu(lambda: None, count=2)
            yield ctx.alu()

        machine.add_program(program)
        stats = machine.run()
        assert stats.total_instructions == 8


class TestDeterminism:
    def test_identical_runs_identical_stats(self):
        def build():
            cfg = MachineConfig(n_cores=2, threads_per_core=2, simd_width=4)
            machine = Machine(cfg)
            counters = machine.image.alloc_zeros(16)

            def program(ctx):
                indices = [(3 * ctx.tid + k) % 16 for k in range(ctx.w)]
                for _ in range(5):
                    todo = ctx.all_ones()
                    while todo.any():
                        vals, got = yield ctx.vgatherlink(
                            counters.base, indices, todo
                        )
                        inc = yield ctx.valu(
                            lambda v=vals, g=got: tuple(
                                x + 1 if g.lane(i) else x
                                for i, x in enumerate(v)
                            )
                        )
                        ok = yield ctx.vscattercond(
                            counters.base, indices, inc, got
                        )
                        todo = yield ctx.kalu(
                            lambda t=todo, o=ok: t.andnot(o)
                        )

            for _ in range(cfg.n_threads):
                machine.add_program(program)
            return machine.run()

        a, b = build(), build()
        assert a.cycles == b.cycles
        assert a.summary() == b.summary()


class TestNamedConfig:
    def test_named_config_parses(self):
        cfg = named_config("4x4", simd_width=16)
        assert cfg.n_cores == 4 and cfg.threads_per_core == 4
        assert cfg.simd_width == 16

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigError):
            named_config("4by4")
