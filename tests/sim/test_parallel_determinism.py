"""Parallel sweeps must persist byte-identical results to serial ones.

The executor's contract is that ``jobs`` is a throughput knob, not a
semantics knob: fanning the smoke grid across worker processes must
produce the same digests and the same stored stats, byte for byte,
as running the grid serially.  Only the provenance block (worker pid,
wall time, timestamps) may differ — it records *how* a number was
produced, not the number.
"""

import json

from repro.bench.suite import BenchSuite
from repro.sim.executor import Executor
from repro.sim.store import ResultStore


def canonical_records(store: ResultStore):
    """digest -> canonical JSON bytes of the record, sans provenance."""
    out = {}
    for digest in store.digests():
        record = store.load_record(digest)
        assert record is not None, f"unreadable record {digest}"
        record.pop("provenance", None)
        record.pop("created", None)
        out[digest] = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode()
    return out


def test_parallel_smoke_sweep_matches_serial_byte_for_byte(tmp_path):
    specs = list(BenchSuite.smoke().specs())

    serial_store = ResultStore(tmp_path / "serial")
    Executor(jobs=1, store=serial_store).run_sweep(specs)

    parallel_store = ResultStore(tmp_path / "parallel")
    parallel = Executor(jobs=4, store=parallel_store)
    parallel.run_sweep(specs)

    serial_records = canonical_records(serial_store)
    parallel_records = canonical_records(parallel_store)

    assert set(serial_records) == set(parallel_records)
    assert len(serial_records) == len(specs)
    for digest, payload in serial_records.items():
        assert parallel_records[digest] == payload, (
            f"store record {digest} differs between serial and "
            f"parallel execution"
        )
