"""Digest/cache compatibility of the coherence-protocol config field.

The coherence seam added ``MachineConfig.protocol``.  Every digest
minted before the seam existed — result-store entries, golden files,
trajectory baselines — must remain valid, so ``to_dict()`` omits the
field at its default and these tests pin the exact pre-seam hashes.
A non-default protocol must digest *differently* (a MESI result must
never be served from an MSI cache entry).
"""

import argparse

from repro.harness.cli import (
    _add_spec_arguments,
    _protocol_parent,
    _spec_from_args,
)
from repro.mem.protocol import DEFAULT_PROTOCOL
from repro.sim.config import MachineConfig
from repro.sim.executor import RunSpec

#: sha256 digests captured on the commit immediately before the seam.
PRE_SEAM_CONFIG_DIGEST = (
    "e90e2ede44ad19bebe252d93ca38831bef35fbfbce2eda67fafb0c2dadcb125b"
)
PRE_SEAM_SPEC_DIGESTS = {
    RunSpec("tms", "A", "4x4", 4, "glsc"):
        "31aac97669af7c341d27630855f6d3ebf66cf5582a02bfe3a5d369ee0e0fcd75",
    RunSpec("tms", "tiny", "1x1", 1, "base"):
        "005e323982087cf5c55a24e054f3078857dcaea27aa7166cd97b4b5042bf9f1f",
}


class TestDigestStability:
    def test_default_config_digest_unchanged(self):
        assert MachineConfig().digest() == PRE_SEAM_CONFIG_DIGEST

    def test_default_to_dict_omits_protocol(self):
        assert "protocol" not in MachineConfig().to_dict()
        assert "protocol" in MachineConfig(protocol="mesi").to_dict()

    def test_explicit_msi_is_byte_identical(self):
        assert (
            MachineConfig(protocol="msi").digest() == PRE_SEAM_CONFIG_DIGEST
        )

    def test_spec_digests_unchanged(self):
        for spec, digest in PRE_SEAM_SPEC_DIGESTS.items():
            assert spec.digest() == digest, spec.label()

    def test_msi_override_spec_digest_identical(self):
        for spec, digest in PRE_SEAM_SPEC_DIGESTS.items():
            assert spec.with_overrides(protocol="msi").digest() == digest

    def test_non_default_protocol_digests_differently(self):
        base = MachineConfig().digest()
        assert MachineConfig(protocol="mesi").digest() != base
        assert MachineConfig(protocol="moesi").digest() != base
        spec = RunSpec("tms", "A", "4x4", 4, "glsc")
        assert spec.with_overrides(protocol="mesi").digest() != spec.digest()

    def test_spec_protocol_property(self):
        spec = RunSpec("tms", "A", "4x4", 4, "glsc")
        assert spec.protocol == DEFAULT_PROTOCOL
        assert spec.with_overrides(protocol="moesi").protocol == "moesi"


class TestCliProtocolFlag:
    def _parse(self, argv):
        # --protocol lives in the shared parent parser all verbs use.
        parser = argparse.ArgumentParser(parents=[_protocol_parent()])
        _add_spec_arguments(parser)
        return _spec_from_args(parser.parse_args(argv))

    def test_default_spells_no_override(self):
        spec = self._parse(["tms"])
        assert spec.overrides == ()

    def test_explicit_msi_spells_no_override(self):
        # --protocol msi must cache/digest exactly like no flag at all.
        assert self._parse(["tms", "--protocol", "msi"]) == self._parse(
            ["tms"]
        )

    def test_non_default_becomes_override(self):
        spec = self._parse(["tms", "--protocol", "mesi"])
        assert spec.overrides == (("protocol", "mesi"),)
        assert spec.protocol == "mesi"
        assert spec.config().protocol == "mesi"

    def test_micro_kernels_accept_protocol(self):
        spec = self._parse(["micro:B", "--protocol", "moesi"])
        assert spec.is_micro and spec.warm
        assert spec.protocol == "moesi"
