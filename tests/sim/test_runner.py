"""Tests for the high-level run API."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import MachineConfig, named_config
from repro.sim.runner import RunResult, run_kernel


@pytest.fixture(scope="module")
def config():
    return MachineConfig(n_cores=2, threads_per_core=2, simd_width=4)


def test_run_kernel_returns_result(config):
    result = run_kernel("hip", "tiny", config, "glsc")
    assert isinstance(result, RunResult)
    assert result.kernel_name == "hip"
    assert result.dataset == "tiny"
    assert result.variant == "glsc"
    assert result.cycles == result.stats.cycles > 0


def test_unknown_kernel_rejected(config):
    with pytest.raises(ConfigError):
        run_kernel("nope", "tiny", config, "base")


def test_unknown_dataset_rejected(config):
    with pytest.raises(ConfigError):
        run_kernel("hip", "nope", config, "base")


def test_unknown_variant_rejected(config):
    with pytest.raises(ConfigError):
        run_kernel("hip", "tiny", config, "turbo")


def test_warm_run_has_fewer_mem_accesses(config):
    cold = run_kernel("tms", "tiny", config, "glsc", warm=False)
    warm = run_kernel("tms", "tiny", config, "glsc", warm=True)
    assert warm.stats.mem_accesses < cold.stats.mem_accesses
    assert warm.stats.cycles < cold.stats.cycles


def test_runs_are_deterministic(config):
    a = run_kernel("gbc", "tiny", config, "glsc")
    b = run_kernel("gbc", "tiny", config, "glsc")
    assert a.stats.summary() == b.stats.summary()


def test_named_config_topologies_match_footnote2():
    for name, cores, threads in (
        ("1x1", 1, 1), ("1x4", 1, 4), ("4x1", 4, 1), ("4x4", 4, 4)
    ):
        cfg = named_config(name)
        assert (cfg.n_cores, cfg.threads_per_core) == (cores, threads)
