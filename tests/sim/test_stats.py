"""Unit tests for the statistics counters and derived metrics."""

import pytest

from repro.sim.stats import FAILURE_CAUSES, MachineStats, ThreadStats


@pytest.fixture
def stats():
    return MachineStats()


class TestThreadAggregation:
    def test_new_thread_registers(self, stats):
        t = stats.new_thread()
        assert isinstance(t, ThreadStats)
        assert stats.threads == [t]

    def test_totals_sum_over_threads(self, stats):
        for n in (3, 5):
            t = stats.new_thread()
            t.instructions = n
            t.mem_stall_cycles = 10 * n
            t.sync_cycles = 100 * n
        assert stats.total_instructions == 8
        assert stats.total_mem_stall_cycles == 80
        assert stats.total_sync_cycles == 800


class TestGlscMetrics:
    def test_failure_rate_zero_without_attempts(self, stats):
        assert stats.glsc_failure_rate == 0.0

    def test_failure_rate_formula(self, stats):
        stats.gatherlink_elements = 100
        stats.scattercond_successes = 80
        assert stats.glsc_failure_rate == pytest.approx(0.2)

    def test_failure_rate_clamped_nonnegative(self, stats):
        stats.gatherlink_elements = 10
        stats.scattercond_successes = 12  # shouldn't happen, but clamp
        assert stats.glsc_failure_rate == 0.0

    def test_record_failure_by_cause(self, stats):
        for cause in FAILURE_CAUSES:
            stats.record_glsc_failure(cause, 2)
        assert stats.glsc_failures_total == 2 * len(FAILURE_CAUSES)

    def test_unknown_cause_rejected(self, stats):
        with pytest.raises(KeyError):
            stats.record_glsc_failure("cosmic_rays")


class TestDerivedFractions:
    def test_sync_fraction(self, stats):
        stats.cycles = 100
        t = stats.new_thread()
        t.sync_cycles = 25
        assert stats.sync_fraction == pytest.approx(0.25)

    def test_sync_fraction_empty(self, stats):
        assert stats.sync_fraction == 0.0

    def test_l1_sync_fraction(self, stats):
        stats.l1_accesses = 200
        stats.l1_sync_accesses = 50
        assert stats.l1_sync_fraction == pytest.approx(0.25)

    def test_combining_reduction(self, stats):
        stats.l1_sync_accesses = 60
        stats.l1_accesses_saved_by_combining = 40
        assert stats.combining_reduction == pytest.approx(0.4)

    def test_combining_reduction_empty(self, stats):
        assert stats.combining_reduction == 0.0


class TestReset:
    def test_reset_zeroes_counters_but_keeps_threads(self, stats):
        t = stats.new_thread()
        stats.l1_accesses = 5
        stats.mem_accesses = 2
        stats.gatherlink_elements = 9
        stats.record_glsc_failure("alias", 3)
        stats.reset_counters()
        assert stats.l1_accesses == 0
        assert stats.mem_accesses == 0
        assert stats.gatherlink_elements == 0
        assert stats.glsc_failures_total == 0
        assert stats.threads == [t]

    def test_summary_keys_stable(self, stats):
        stats.new_thread()
        summary = stats.summary()
        assert {"cycles", "instructions", "glsc_failure_rate"} <= set(summary)
