"""Result-store tests: round-trip fidelity, invalidation, resilience.

The acceptance bar for the store is exact: a stats object served from
disk must equal the freshly simulated one field-for-field, and any
config change must miss cleanly rather than serve a stale number.
"""

import dataclasses
import json

import pytest

from repro.harness import experiments
from repro.sim.executor import Executor, RunSpec
from repro.sim.stats import MachineStats, ThreadStats
from repro.sim.store import ResultStore, STORE_VERSION, default_cache_dir

SPEC = RunSpec("tms", "tiny", "1x1", 4, "glsc")


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


class TestStatsSerialization:
    def test_round_trip_through_json(self):
        stats = Executor().run(SPEC)
        wire = json.loads(json.dumps(stats.to_dict()))
        rebuilt = MachineStats.from_dict(wire)
        assert rebuilt == stats
        assert rebuilt.summary() == stats.summary()

    def test_thread_stats_round_trip(self):
        threads = ThreadStats(instructions=7, mem_stall_cycles=3,
                              finish_cycle=99)
        assert ThreadStats.from_dict(threads.to_dict()) == threads

    def test_unknown_keys_ignored(self):
        data = MachineStats().to_dict()
        data["counter_from_the_future"] = 1
        assert MachineStats.from_dict(data) == MachineStats()


class TestStoreRoundTrip:
    def test_save_load(self, store):
        stats = Executor().run(SPEC)
        digest = SPEC.digest()
        store.save(digest, stats, spec=SPEC.to_dict(),
                   config=SPEC.config().to_dict())
        assert digest in store
        assert store.load(digest) == stats
        record = store.load_record(digest)
        assert record["spec"]["kernel"] == "tms"
        assert record["config"]["simd_width"] == 4
        assert record["version"] == STORE_VERSION

    def test_miss_returns_none(self, store):
        assert store.load("0" * 64) is None
        assert "0" * 64 not in store

    def test_persists_across_executors(self, store):
        first = Executor(store=store)
        a = first.run(SPEC)
        assert (first.simulations, first.store_hits) == (1, 0)

        second = Executor(store=store)
        b = second.run(SPEC)
        assert (second.simulations, second.store_hits) == (0, 1)
        assert a == b

    def test_corrupt_file_is_a_miss(self, store):
        executor = Executor(store=store)
        executor.run(SPEC)
        path = store.path_for(SPEC.digest())
        path.write_text("{not json")

        fresh = Executor(store=store)
        fresh.run(SPEC)
        assert fresh.simulations == 1
        # The rerun healed the entry.
        assert store.load(SPEC.digest()) is not None

    def test_digest_mismatch_is_a_miss(self, store):
        executor = Executor(store=store)
        executor.run(SPEC)
        path = store.path_for(SPEC.digest())
        record = json.loads(path.read_text())
        record["digest"] = "f" * 64
        path.write_text(json.dumps(record))
        assert store.load(SPEC.digest()) is None

    def test_clear(self, store):
        Executor(store=store).run(SPEC)
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0

    def test_config_change_invalidates(self, store):
        executor = Executor(store=store)
        executor.run(SPEC)
        # Same workload, different machine: must simulate anew...
        changed = Executor(store=store)
        changed.run(SPEC.with_overrides(mem_latency=123))
        assert changed.simulations == 1
        # ...and both entries coexist under distinct digests.
        assert len(store) == 2


class TestProvenance:
    def test_fresh_results_carry_provenance(self, store):
        import os

        executor = Executor(store=store)
        executor.run(SPEC)
        record = store.load_record(SPEC.digest())
        prov = record["provenance"]
        assert prov["worker_pid"] == os.getpid()
        assert prov["wall_time_s"] > 0
        assert prov["created"] > 0
        for key in ("repro_version", "python", "platform"):
            assert key in prov

    def test_save_without_provenance_still_loads(self, store):
        stats = Executor().run(SPEC)
        store.save(SPEC.digest(), stats)
        assert store.load(SPEC.digest()) == stats
        assert store.load_record(SPEC.digest())["provenance"] == {}

    def test_unknown_record_keys_ignored_on_load(self, store):
        """Forward compatibility: a record written by a newer repro
        version (extra top-level keys) must still be served."""
        executor = Executor(store=store)
        stats = executor.run(SPEC)
        path = store.path_for(SPEC.digest())
        record = json.loads(path.read_text())
        record["added_by_a_future_version"] = {"telemetry_v2": [1, 2]}
        path.write_text(json.dumps(record))
        assert store.load(SPEC.digest()) == stats


class TestHarnessCaching:
    def test_repeated_fig8_is_all_store_hits(self, store):
        """Acceptance shape: a repeat invocation simulates nothing."""
        cold = Executor(store=store)
        rows_cold = experiments.fig8(("tms",), ("tiny",), widths=(1, 4),
                                     executor=cold)
        assert cold.simulations == 4

        warm = Executor(store=store)
        rows_warm = experiments.fig8(("tms",), ("tiny",), widths=(1, 4),
                                     executor=warm)
        assert warm.simulations == 0
        assert warm.store_hits == 4
        assert [r.ratios for r in rows_warm] == [r.ratios for r in rows_cold]


class TestMaintenance:
    """The `repro cache` surface: records, tally, stale detection."""

    def test_records_yields_valid_entries_only(self, store):
        Executor(store=store).run(SPEC)
        (store.root / ("ab" * 32 + ".json")).write_text("{corrupt")
        entries = list(store.records())
        assert len(entries) == 1
        digest, record = entries[0]
        assert digest == SPEC.digest()
        assert record["spec"]["kernel"] == "tms"

    def test_tally_counts_hits_and_misses(self, store):
        assert store.tally() == {"hits": 0, "misses": 0}
        store.load("0" * 64)
        Executor(store=store).run(SPEC)      # one store miss, then save
        Executor(store=store).run(SPEC)      # one store hit
        tally = store.tally()
        assert tally["hits"] == 1
        assert tally["misses"] == 2

    def test_tally_sidecar_is_not_a_record(self, store):
        Executor(store=store).run(SPEC)
        store.load(SPEC.digest())
        assert (store.root / ResultStore.TALLY_NAME).exists()
        assert len(store) == 1  # digests() sees only result files

    def test_stale_digest_detection_and_prune(self, store):
        Executor(store=store).run(SPEC)
        digest = SPEC.digest()
        # Simulate a config-schema change stranding the entry: the
        # stored spec no longer re-derives the filename digest.
        path = store.path_for(digest)
        record = json.loads(path.read_text())
        stranded = store.root / ("cd" * 32 + ".json")
        record["digest"] = stranded.stem
        stranded.write_text(json.dumps(record))

        assert store.stale_digests() == [stranded.stem]
        assert store.prune(dry_run=True) == [stranded.stem]
        assert stranded.exists()                    # dry run deletes nothing
        assert store.prune() == [stranded.stem]
        assert not stranded.exists()
        assert digest in store                      # healthy entry survives

    def test_corrupt_entry_is_stale(self, store):
        Executor(store=store).run(SPEC)
        store.path_for(SPEC.digest()).write_text("{torn write")
        assert store.stale_digests() == [SPEC.digest()]

    def test_record_without_spec_is_kept(self, store):
        stats = Executor().run(SPEC)
        store.save(SPEC.digest(), stats)            # no spec recorded
        assert store.stale_digests() == []

    def test_describe_aggregates(self, store):
        Executor(store=store).run(SPEC)
        Executor(store=store).run(SPEC)             # one hit
        info = store.describe()
        assert info["entries"] == 1
        assert info["by_kernel"] == {"tms": 1}
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["size_bytes"] > 0
        assert info["simulated_wall_s"] > 0
        assert info["stale"] == 0


class TestSpecFromDict:
    def test_round_trip(self):
        spec = RunSpec("hip", "B", "4x1", 16, "base",
                       overrides={"mem_latency": 99}, warm=True)
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.digest() == spec.digest()

    def test_json_round_trip_preserves_digest(self):
        wire = json.loads(json.dumps(SPEC.to_dict()))
        assert RunSpec.from_dict(wire).digest() == SPEC.digest()

    def test_unknown_keys_ignored(self):
        data = SPEC.to_dict()
        data["field_from_the_future"] = True
        assert RunSpec.from_dict(data) == SPEC


class TestDefaults:
    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert ResultStore().root == tmp_path / "elsewhere"

    def test_cli_flags_thread_through(self, monkeypatch, tmp_path, capsys):
        from repro.harness.cli import main

        cache = tmp_path / "cli-cache"
        code = main(["fig8", "--kernels", "tms", "--datasets", "tiny",
                     "--jobs", "2", "--cache-dir", str(cache)])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out
        assert len(ResultStore(cache)) == 6  # 3 widths x 2 variants

        # Second invocation: everything served from the store.
        code = main(["fig8", "--kernels", "tms", "--datasets", "tiny",
                     "--cache-dir", str(cache)])
        assert code == 0
        err = capsys.readouterr().err
        assert "[0 simulations, 6 from store" in err

    def test_cli_no_cache_writes_nothing(self, tmp_path, capsys):
        from repro.harness.cli import main

        cache = tmp_path / "untouched"
        code = main(["fig5a", "--kernels", "tms", "--datasets", "tiny",
                     "--cache-dir", str(cache), "--no-cache"])
        assert code == 0
        capsys.readouterr()
        assert not cache.exists()
