"""Tests for the instruction-trace subsystem."""

import pytest

from repro.isa.instructions import Kind
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.trace import InstructionTrace, TraceEvent


def traced_run(program_factory, n_threads=1, limit=None, **cfg):
    defaults = dict(n_cores=1, threads_per_core=max(n_threads, 1),
                    simd_width=4)
    defaults.update(cfg)
    trace = InstructionTrace(limit=limit)
    machine = Machine(MachineConfig(**defaults), tracer=trace)
    for _ in range(n_threads):
        machine.add_program(program_factory(machine))
    machine.run()
    return trace, machine


def simple_program(machine):
    word = machine.image.alloc_zeros(1)

    def program(ctx):
        yield ctx.alu(3)
        value = yield ctx.load(word.base)
        yield ctx.store(word.base, value + 1)

    return program


class TestCollection:
    def test_records_every_instruction(self):
        trace, _ = traced_run(simple_program)
        assert len(trace) == 3
        kinds = [e.kind for e in trace]
        assert kinds == [Kind.ALU, Kind.LOAD, Kind.STORE]

    def test_events_carry_timing(self):
        trace, _ = traced_run(simple_program)
        alu, load, store = list(trace)
        assert alu.latency == 3
        assert load.latency >= 3  # at least an L1 hit
        assert load.cycle >= alu.completion

    def test_limit_caps_events_but_not_profile(self):
        trace, _ = traced_run(simple_program, limit=1)
        assert len(trace) == 1
        assert trace.dropped == 2
        profile = trace.kind_profile()
        assert sum(p.count for p in profile.values()) == 3

    def test_for_thread(self):
        trace, _ = traced_run(simple_program, n_threads=2)
        assert len(trace.for_thread(0)) == 3
        assert len(trace.for_thread(1)) == 3


class TestSummaries:
    def test_kind_profile_latencies(self):
        trace, _ = traced_run(simple_program)
        profile = trace.kind_profile()
        assert profile[Kind.ALU].count == 1
        assert profile[Kind.ALU].mean_latency == pytest.approx(3.0)
        assert profile[Kind.LOAD].max_latency >= 3

    def test_sync_share(self):
        def factory(machine):
            word = machine.image.alloc_zeros(1)

            def program(ctx):
                value = yield ctx.ll(word.base)
                yield ctx.sc(word.base, value + 1)

            return program

        trace, _ = traced_run(factory)
        assert trace.sync_share() == pytest.approx(1.0)

    def test_render_mentions_kinds(self):
        trace, _ = traced_run(simple_program)
        text = trace.render()
        assert "ALU" in text and "LOAD" in text

    def test_event_latency_floor(self):
        event = TraceEvent(
            cycle=5, completion=5, thread=0, core=0, kind=Kind.ALU,
            sync=False,
        )
        assert event.latency == 1


class TestBusSeam:
    """The tracer seam and the event bus deliver identical streams."""

    def test_tracer_kwarg_and_instr_bus_agree(self):
        from repro.obs.bus import EventBus

        direct, _ = traced_run(simple_program)

        bus = EventBus()
        via_bus = bus.attach(InstructionTrace())
        machine = Machine(
            MachineConfig(n_cores=1, threads_per_core=1, simd_width=4),
            obs=bus,
        )
        machine.add_program(simple_program(machine))
        machine.run()

        assert list(via_bus) == list(direct)
        assert via_bus.kind_profile() == direct.kind_profile()

    def test_tracer_close_called_through_bus(self):
        from repro.obs.bus import EventBus

        closes = []

        class Closing(InstructionTrace):
            def close(self):
                closes.append(True)

        bus = EventBus()
        bus.attach(Closing())
        bus.close()
        assert closes == [True]


class TestGsuTracing:
    def test_glsc_instructions_traced_as_sync(self):
        def factory(machine):
            data = machine.image.alloc_array([1, 2, 3, 4])

            def program(ctx):
                vals, got = yield ctx.vgatherlink(data.base, [0, 1, 2, 3])
                yield ctx.vscattercond(
                    data.base, [0, 1, 2, 3],
                    tuple(v + 1 for v in vals), got,
                )

            return program

        trace, _ = traced_run(factory)
        assert all(e.sync for e in trace)
        kinds = {e.kind for e in trace}
        assert kinds == {Kind.VGATHERLINK, Kind.VSCATTERCOND}
