"""The stable public surface: everything in ISSUE 7's contract imports
from ``repro`` directly and ``__all__`` is honest (tier 1).
"""

import repro


STABLE = (
    "RunSpec",
    "Sweep",
    "Executor",
    "ResultStore",
    "MachineConfig",
    "MachineStats",
    "SweepClient",
)


class TestPublicSurface:
    def test_stable_names_importable_from_top_level(self):
        for name in STABLE:
            assert hasattr(repro, name), name
            assert name in repro.__all__, name

    def test_all_is_honest(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted_and_unique(self):
        names = [n for n in repro.__all__ if not n.startswith("__")]
        assert names == sorted(set(names))

    def test_session_facade_not_reexported(self):
        assert not hasattr(repro, "Session")

    def test_top_level_spellings_are_the_canonical_classes(self):
        from repro.service.client import SweepClient
        from repro.sim.executor import Executor, RunSpec, Sweep
        from repro.sim.store import ResultStore

        assert repro.RunSpec is RunSpec
        assert repro.Sweep is Sweep
        assert repro.Executor is Executor
        assert repro.ResultStore is ResultStore
        assert repro.SweepClient is SweepClient

    def test_quickstart_types_roundtrip(self, tmp_path):
        spec = repro.RunSpec("tms", "tiny", "1x1", 4, "glsc")
        store = repro.ResultStore(tmp_path / "cache")
        stats = repro.Executor(store=store).run(spec)
        assert isinstance(stats, repro.MachineStats)
        assert store.load(spec.digest()) == stats
