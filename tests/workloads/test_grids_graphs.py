"""Unit tests for grid (GBC/SMC) and graph (GPS/MFP) workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads.graphs import (
    constraint_system,
    flow_network,
    group_independent,
)
from repro.workloads.grids import collision_scene, particle_field


class TestCollisionScene:
    def test_shape(self):
        scene = collision_scene(100, 64, run_mean=2.0, seed=1)
        assert scene.n_objects == 100
        assert scene.n_insertions >= 100
        assert all(0 <= c < 64 for _, c in scene.insertions)
        assert all(0 <= o < 100 for o, _ in scene.insertions)

    def test_straddle_fraction_adds_insertions(self):
        none = collision_scene(400, 512, 1.5, seed=9, straddle_fraction=0.0)
        some = collision_scene(400, 512, 1.5, seed=9, straddle_fraction=0.5)
        assert none.n_insertions == 400
        assert some.n_insertions > 500

    def test_straddled_object_gets_adjacent_cells(self):
        scene = collision_scene(200, 64, 1.0, seed=10, straddle_fraction=1.0)
        by_object = {}
        for obj, cell in scene.insertions:
            by_object.setdefault(obj, []).append(cell)
        for cells in by_object.values():
            assert len(cells) == 2
            assert cells[1] == (cells[0] + 1) % 64

    def test_runs_create_adjacent_aliases(self):
        scene = collision_scene(2000, 4096, run_mean=3.0, seed=2)
        repeats = sum(
            1
            for a, b in zip(scene.object_cells, scene.object_cells[1:])
            if a == b
        )
        assert repeats > 400  # long runs survive the spatial sort

    def test_run_mean_one_is_low_alias(self):
        # Sparse occupancy: with unit runs, adjacency comes only from
        # birthday collisions made adjacent by the spatial sort.
        scene = collision_scene(200, 4096, run_mean=1.0, seed=3)
        repeats = sum(
            1
            for a, b in zip(scene.object_cells, scene.object_cells[1:])
            if a == b
        )
        assert repeats < 20

    def test_cells_are_sorted(self):
        scene = collision_scene(500, 1024, run_mean=2.0, seed=4)
        # Spatial sweep: cell ids are non-decreasing run by run.
        assert scene.object_cells == sorted(scene.object_cells)

    def test_histogram_oracle(self):
        scene = collision_scene(50, 16, run_mean=1.5, seed=5)
        assert sum(scene.cell_histogram()) == scene.n_insertions

    def test_validation(self):
        with pytest.raises(ConfigError):
            collision_scene(0, 16, 1.5, 1)
        with pytest.raises(ConfigError):
            collision_scene(16, 16, 0.5, 1)


class TestParticleField:
    def test_shape(self):
        field = particle_field(100, 8, seed=1)
        assert field.n_particles == 100
        assert field.n_nodes == 512
        assert all(len(c) == 8 for c in field.corner_nodes)

    def test_corner_indices_valid(self):
        field = particle_field(200, 6, seed=2)
        for corners in field.corner_nodes:
            assert all(0 <= n < field.n_nodes for n in corners)
            assert len(set(corners)) == 8  # a cell's corners are distinct

    def test_z_slab_ordering(self):
        field = particle_field(300, 8, seed=3)
        z_of = [corners[0] // (8 * 8) for corners in field.corner_nodes]
        assert z_of == sorted(z_of)

    def test_density_oracle_mass(self):
        field = particle_field(50, 5, seed=4)
        assert sum(field.density_oracle()) == pytest.approx(
            8 * sum(field.weights)
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            particle_field(10, 1, 1)
        with pytest.raises(ConfigError):
            particle_field(0, 4, 1)


class TestFlowNetwork:
    def test_shape_and_locality(self):
        net = flow_network(200, 500, seed=1, locality=8)
        assert net.n_edges == 500
        for u, v in net.edges:
            assert u != v
            assert abs(u - v) <= 8

    def test_edges_sorted_by_source(self):
        net = flow_network(100, 300, seed=2)
        assert net.edges == sorted(net.edges)

    def test_excess_oracle_conserves_flow(self):
        net = flow_network(50, 120, seed=3)
        initial = [1.0] * 50
        final = net.excess_oracle(initial)
        assert sum(final) == pytest.approx(sum(initial))

    def test_validation(self):
        with pytest.raises(ConfigError):
            flow_network(1, 5, 1)
        with pytest.raises(ConfigError):
            flow_network(5, 5, 1, locality=0)


class TestConstraintSystem:
    def test_shape_and_locality(self):
        system = constraint_system(100, 250, 2, seed=1, locality=6)
        assert system.n_constraints == 250
        for a, b in system.constraints:
            assert a != b and abs(a - b) <= 6

    def test_oracle_is_iteration_scaled(self):
        one = constraint_system(20, 30, 1, seed=2)
        two = constraint_system(20, 30, 2, seed=2)
        assert two.solve_oracle() == [2 * v for v in one.solve_oracle()]

    def test_validation(self):
        with pytest.raises(ConfigError):
            constraint_system(1, 5, 1, 1)
        with pytest.raises(ConfigError):
            constraint_system(5, 5, 0, 1)


class TestGroupIndependent:
    def test_groups_are_independent(self):
        system = constraint_system(60, 150, 1, seed=4, locality=5)
        groups = group_independent(system.constraints, 16)
        for group in groups:
            objects = []
            for idx in group:
                objects.extend(system.constraints[idx])
            assert len(objects) == len(set(objects))

    def test_groups_cover_all_constraints_once(self):
        system = constraint_system(60, 150, 1, seed=5, locality=5)
        groups = group_independent(system.constraints, 16)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(150))

    def test_group_size_respected(self):
        system = constraint_system(60, 150, 1, seed=6, locality=30)
        groups = group_independent(system.constraints, 4)
        assert all(len(g) <= 4 for g in groups)

    def test_validation(self):
        with pytest.raises(ConfigError):
            group_independent([(0, 1)], 0)

    @settings(max_examples=25)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(21, 40)),
            min_size=1,
            max_size=60,
        ),
        st.integers(1, 16),
    )
    def test_independence_property(self, constraints, group_size):
        groups = group_independent(constraints, group_size)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(len(constraints)))
        for group in groups:
            assert len(group) <= group_size
            objects = []
            for idx in group:
                objects.extend(constraints[idx])
            assert len(objects) == len(set(objects))
