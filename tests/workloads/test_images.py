"""Unit tests for the synthetic image generator (HIP workload)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads.images import alias_fraction, generate_image


class TestGenerateImage:
    def test_shape_and_range(self):
        pixels = generate_image(500, 16, coherence=0.3, skew=1.0, seed=1)
        assert len(pixels) == 500
        assert all(0 <= p < 16 for p in pixels)

    def test_deterministic(self):
        a = generate_image(200, 8, coherence=0.5, skew=1.0, seed=7)
        b = generate_image(200, 8, coherence=0.5, skew=1.0, seed=7)
        assert a == b

    def test_seed_changes_output(self):
        a = generate_image(200, 8, coherence=0.5, skew=1.0, seed=7)
        b = generate_image(200, 8, coherence=0.5, skew=1.0, seed=8)
        assert a != b

    def test_coherence_increases_aliasing(self):
        low = generate_image(4000, 64, coherence=0.0, skew=0.0, seed=3)
        high = generate_image(4000, 64, coherence=0.6, skew=0.0, seed=3)
        assert alias_fraction(high, 4) > alias_fraction(low, 4) + 0.2

    def test_uniform_random_has_low_aliasing(self):
        pixels = generate_image(4000, 64, coherence=0.0, skew=0.0, seed=4)
        assert alias_fraction(pixels, 4) < 0.08

    def test_validation(self):
        with pytest.raises(ConfigError):
            generate_image(0, 8, 0.1, 1.0, 1)
        with pytest.raises(ConfigError):
            generate_image(10, 8, 1.0, 1.0, 1)  # coherence must be < 1
        with pytest.raises(ConfigError):
            generate_image(10, 8, 0.1, -1.0, 1)


class TestAliasFraction:
    def test_no_aliases(self):
        assert alias_fraction([0, 1, 2, 3, 4, 5, 6, 7], 4) == 0.0

    def test_full_aliases(self):
        assert alias_fraction([5, 5, 5, 5], 4) == pytest.approx(0.75)

    def test_scalar_width_is_zero(self):
        assert alias_fraction([1, 1, 1], 1) == 0.0

    def test_empty(self):
        assert alias_fraction([], 4) == 0.0

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 3), min_size=8, max_size=64))
    def test_bounded(self, pixels):
        fraction = alias_fraction(pixels, 4)
        assert 0.0 <= fraction <= 0.75 + 1e-9
