"""Unit tests for sparse-matrix workloads (TMS, FS)."""

import pytest

from repro.errors import ConfigError
from repro.workloads.sparse import (
    block_triangular,
    forward_substitute,
    random_sparse,
)


class TestRandomSparse:
    def test_nnz_close_to_density(self):
        m = random_sparse(100, 100, 0.05, seed=1)
        assert 400 <= m.nnz <= 600
        assert m.rows == 100 and m.cols == 100

    def test_positions_unique_and_in_range(self):
        m = random_sparse(20, 30, 0.2, seed=2)
        positions = [(r, c) for r, c, _ in m.nonzeros]
        assert len(set(positions)) == len(positions)
        assert all(0 <= r < 20 and 0 <= c < 30 for r, c in positions)

    def test_sorted_row_major(self):
        m = random_sparse(20, 30, 0.2, seed=3)
        positions = [(r, c) for r, c, _ in m.nonzeros]
        assert positions == sorted(positions)

    def test_band_concentrates_columns(self):
        m = random_sparse(200, 2000, 0.002, seed=4, band=50.0)
        for row, col, _ in m.nonzeros:
            center = row * 2000 / 200
            assert abs(col - center) < 50 * 6  # six sigma

    def test_transpose_matvec_oracle(self):
        m = random_sparse(10, 8, 0.3, seed=5)
        x = [1.0] * 10
        y = m.transpose_matvec(x)
        assert len(y) == 8
        assert sum(y) == pytest.approx(sum(v for _, _, v in m.nonzeros))

    def test_validation(self):
        with pytest.raises(ConfigError):
            random_sparse(0, 10, 0.1, 1)
        with pytest.raises(ConfigError):
            random_sparse(10, 10, 0.0, 1)


class TestForwardSubstitute:
    def test_identity(self):
        assert forward_substitute([[1.0, 0], [0, 1.0]], [3.0, 4.0]) == [3.0, 4.0]

    def test_lower_triangle(self):
        lower = [[1.0, 0.0], [2.0, 1.0]]
        x = forward_substitute(lower, [1.0, 4.0])
        assert x == [1.0, 2.0]


class TestBlockTriangular:
    def test_structure(self):
        system = block_triangular(6, 4, 0.4, seed=6)
        assert system.n == 24
        assert len(system.diag) == 6
        for (i, j) in system.off_blocks:
            assert i > j

    def test_unit_diagonal(self):
        system = block_triangular(4, 4, 0.3, seed=7)
        for block in system.diag:
            for r in range(4):
                assert block[r][r] == 1.0
                for c in range(r + 1, 4):
                    assert block[r][c] == 0.0

    def test_levels_respect_dependencies(self):
        system = block_triangular(8, 4, 0.5, seed=8)
        for (i, j) in system.off_blocks:
            assert system.levels[i] > system.levels[j]

    def test_level_schedule_partitions_columns(self):
        system = block_triangular(8, 4, 0.5, seed=9)
        schedule = system.level_schedule()
        seen = [j for level in schedule for j in level]
        assert sorted(seen) == list(range(8))

    def test_oracle_solves_system(self):
        system = block_triangular(5, 4, 0.5, seed=10)
        x = system.solve_oracle()
        # Recompute L @ x and compare against the rhs.
        n, b = system.n, system.block
        residual = list(system.rhs)
        for j in range(system.n_blocks):
            for r in range(b):
                row = j * b + r
                acc = 0.0
                for k in range(b):
                    acc += system.diag[j][r][k] * x[j * b + k]
                for (i, jj), blk in system.off_blocks.items():
                    if i == j:
                        acc += sum(
                            blk[r][k] * x[jj * b + k] for k in range(b)
                        )
                residual[row] -= acc
        assert all(abs(v) < 1e-6 for v in residual)

    def test_validation(self):
        with pytest.raises(ConfigError):
            block_triangular(0, 4, 0.5, 1)
        with pytest.raises(ConfigError):
            block_triangular(4, 4, 1.5, 1)
